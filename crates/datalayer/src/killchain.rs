//! The Fig. 8 kill chain, executed stage by stage.
//!
//! `Traffic analysis → Directory enumeration → Supply-chain
//! identification → Heap dump → Key extraction → Data extraction` —
//! exactly the progression described at 38C3 and summarized in §V-A.
//! Each stage queries the simulated backend; defenses break specific
//! stages, and detection-capable defenses can flag the attack even when
//! they do not stop it.

use autosec_sim::SimRng;

use crate::service::{RouteKind, TelemetryBackend};

/// The six stages of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KillChainStage {
    /// Observing the vehicle's cloud traffic to find the API host.
    TrafficAnalysis,
    /// Enumerating the web service's directory structure (gobuster).
    DirectoryEnumeration,
    /// Identifying the framework (Spring) from leaked structure.
    SupplyChainIdentification,
    /// Fetching the heap dump from the debug actuator.
    HeapDump,
    /// Extracting cloud credentials from the dump.
    KeyExtraction,
    /// Bulk-exporting the telemetry data.
    DataExtraction,
}

impl KillChainStage {
    /// All stages in chain order.
    pub const ALL: [KillChainStage; 6] = [
        KillChainStage::TrafficAnalysis,
        KillChainStage::DirectoryEnumeration,
        KillChainStage::SupplyChainIdentification,
        KillChainStage::HeapDump,
        KillChainStage::KeyExtraction,
        KillChainStage::DataExtraction,
    ];
}

impl std::fmt::Display for KillChainStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KillChainStage::TrafficAnalysis => "traffic-analysis",
            KillChainStage::DirectoryEnumeration => "directory-enumeration",
            KillChainStage::SupplyChainIdentification => "supply-chain-id",
            KillChainStage::HeapDump => "heap-dump",
            KillChainStage::KeyExtraction => "key-extraction",
            KillChainStage::DataExtraction => "data-extraction",
        };
        f.write_str(s)
    }
}

/// Result of one kill-chain run.
#[derive(Debug, Clone, PartialEq)]
pub struct KillChainReport {
    /// Stages completed, in order.
    pub completed: Vec<KillChainStage>,
    /// Stage at which the chain stopped (`None` = full compromise).
    pub blocked_at: Option<KillChainStage>,
    /// Stage at which a detection fired, if any (independent of
    /// blocking: CARIAD had neither).
    pub detected_at: Option<KillChainStage>,
    /// Vehicle records exfiltrated.
    pub records_exfiltrated: usize,
    /// Sensitive-person records among them.
    pub sensitive_records: usize,
}

impl KillChainReport {
    /// Whether the chain got at least to `stage`.
    pub fn reached(&self, stage: KillChainStage) -> bool {
        self.completed.contains(&stage)
    }
}

/// The analyst/attacker of §V-A.
#[derive(Debug, Clone, Default)]
pub struct Attacker;

impl Attacker {
    /// Creates an attacker.
    pub fn new() -> Self {
        Self
    }

    /// Runs the full chain against `backend`.
    pub fn execute(&self, backend: &TelemetryBackend, rng: &mut SimRng) -> KillChainReport {
        let mut completed = Vec::new();
        let mut detected_at = None;

        // Stage 1: traffic analysis — passive, always succeeds.
        completed.push(KillChainStage::TrafficAnalysis);

        // Stage 2: directory enumeration. Rate limiting detects (and
        // throttles) the wordlist scan; the scan still finds public
        // routes eventually, so this is detect-only.
        if backend.defenses.rate_limiting && detected_at.is_none() {
            detected_at = Some(KillChainStage::DirectoryEnumeration);
        }
        let public_routes: Vec<_> = backend
            .routes()
            .iter()
            .filter(|r| !r.requires_auth)
            .collect();
        if public_routes.is_empty() {
            return KillChainReport {
                completed,
                blocked_at: Some(KillChainStage::DirectoryEnumeration),
                detected_at,
                records_exfiltrated: 0,
                sensitive_records: 0,
            };
        }
        completed.push(KillChainStage::DirectoryEnumeration);

        // Stage 3: supply-chain identification — the enumerated
        // structure fingerprints the framework.
        let framework_known = backend.framework == "Spring";
        if !framework_known {
            return KillChainReport {
                completed,
                blocked_at: Some(KillChainStage::SupplyChainIdentification),
                detected_at,
                records_exfiltrated: 0,
                sensitive_records: 0,
            };
        }
        completed.push(KillChainStage::SupplyChainIdentification);

        // Stage 4: heap dump via the debug actuator.
        let dump = match backend.heap_dump() {
            Some(d) => d,
            None => {
                return KillChainReport {
                    completed,
                    blocked_at: Some(KillChainStage::HeapDump),
                    detected_at,
                    records_exfiltrated: 0,
                    sensitive_records: 0,
                }
            }
        };
        debug_assert!(backend
            .routes()
            .iter()
            .any(|r| r.kind == RouteKind::HeapDump));
        completed.push(KillChainStage::HeapDump);

        // Stage 5: key extraction from the dump.
        let key = match dump {
            Some(k) => k,
            None => {
                return KillChainReport {
                    completed,
                    blocked_at: Some(KillChainStage::KeyExtraction),
                    detected_at,
                    records_exfiltrated: 0,
                    sensitive_records: 0,
                }
            }
        };
        completed.push(KillChainStage::KeyExtraction);

        // Stage 6: mint a token, bulk-export.
        let token = match backend.mint_user_token(&key) {
            Some(t) => t,
            None => {
                return KillChainReport {
                    completed,
                    blocked_at: Some(KillChainStage::DataExtraction),
                    detected_at,
                    records_exfiltrated: 0,
                    sensitive_records: 0,
                }
            }
        };
        let records = backend.export(&token);
        if backend.defenses.exfiltration_detection && detected_at.is_none() {
            detected_at = Some(KillChainStage::DataExtraction);
        }
        completed.push(KillChainStage::DataExtraction);
        let _ = rng; // reserved for stochastic stage models

        KillChainReport {
            completed,
            blocked_at: None,
            detected_at,
            records_exfiltrated: records.len(),
            sensitive_records: records.iter().filter(|r| r.sensitive).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DefenseConfig;

    fn run(defenses: DefenseConfig) -> KillChainReport {
        let mut rng = SimRng::seed(123);
        let backend = TelemetryBackend::build(2000, defenses, &mut rng);
        Attacker::new().execute(&backend, &mut rng)
    }

    #[test]
    fn undefended_full_compromise() {
        let r = run(DefenseConfig::none());
        assert_eq!(r.blocked_at, None);
        assert_eq!(r.completed.len(), 6);
        assert_eq!(r.records_exfiltrated, 2000);
        assert!(r.sensitive_records > 0, "the national-security angle");
        assert_eq!(r.detected_at, None, "CARIAD never noticed");
    }

    #[test]
    fn disabling_debug_endpoints_blocks_at_heap_dump() {
        let mut d = DefenseConfig::none();
        d.debug_endpoints_disabled = true;
        let r = run(d);
        assert_eq!(r.blocked_at, Some(KillChainStage::HeapDump));
        assert_eq!(r.records_exfiltrated, 0);
        assert!(r.reached(KillChainStage::SupplyChainIdentification));
    }

    #[test]
    fn vaulted_secrets_block_at_key_extraction() {
        let mut d = DefenseConfig::none();
        d.secret_scanning = true;
        let r = run(d);
        assert_eq!(r.blocked_at, Some(KillChainStage::KeyExtraction));
        assert!(r.reached(KillChainStage::HeapDump), "dump still leaks");
        assert_eq!(r.records_exfiltrated, 0);
    }

    #[test]
    fn scoped_keys_block_at_data_extraction() {
        let mut d = DefenseConfig::none();
        d.scoped_keys = true;
        let r = run(d);
        assert_eq!(r.blocked_at, Some(KillChainStage::DataExtraction));
        assert!(r.reached(KillChainStage::KeyExtraction));
        assert_eq!(r.records_exfiltrated, 0);
    }

    #[test]
    fn rate_limiting_detects_even_if_chain_proceeds() {
        let mut d = DefenseConfig::none();
        d.rate_limiting = true;
        let r = run(d);
        assert_eq!(r.detected_at, Some(KillChainStage::DirectoryEnumeration));
        // Detection-only: exfiltration still happens without blockers.
        assert_eq!(r.blocked_at, None);
    }

    #[test]
    fn exfiltration_detection_fires_at_the_last_stage() {
        let mut d = DefenseConfig::none();
        d.exfiltration_detection = true;
        let r = run(d);
        assert_eq!(r.detected_at, Some(KillChainStage::DataExtraction));
    }

    #[test]
    fn hardened_backend_blocks_early_and_detects() {
        let r = run(DefenseConfig::hardened());
        assert_eq!(r.blocked_at, Some(KillChainStage::HeapDump));
        assert_eq!(r.detected_at, Some(KillChainStage::DirectoryEnumeration));
        assert_eq!(r.records_exfiltrated, 0);
    }

    #[test]
    fn stage_order_is_canonical() {
        let r = run(DefenseConfig::none());
        assert_eq!(r.completed, KillChainStage::ALL.to_vec());
    }
}
