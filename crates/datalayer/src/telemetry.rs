//! Synthetic vehicle telemetry fleet.
//!
//! The real breach exposed ~800,000 customers' personal information and
//! months of precise geolocation. The generator produces an equivalent
//! synthetic population so the kill chain has something real to steal.

use autosec_sim::SimRng;
use rand::Rng;

/// One GPS fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoFix {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Seconds since trace start.
    pub t: u64,
}

/// A vehicle's telemetry record: the PII the breach exposed.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleRecord {
    /// Vehicle identification number.
    pub vin: String,
    /// Owner name.
    pub owner: String,
    /// Owner email.
    pub email: String,
    /// Whether the owner is flagged sensitive (politicians, police,
    /// intelligence — the category that made the real breach explosive).
    pub sensitive: bool,
    /// Geolocation trace.
    pub trace: Vec<GeoFix>,
}

impl VehicleRecord {
    /// Number of PII fields exposed if this record leaks (name, email,
    /// VIN, plus one per fix).
    pub fn pii_weight(&self) -> usize {
        3 + self.trace.len()
    }
}

/// Generates a synthetic fleet of `n` vehicles with `fixes_per_vehicle`
/// geolocation points each; roughly 1% of owners are sensitive.
pub fn generate_fleet(n: usize, fixes_per_vehicle: usize, rng: &mut SimRng) -> Vec<VehicleRecord> {
    (0..n)
        .map(|i| {
            let mut lat = 48.0 + rng.gen_range(-3.0..3.0);
            let mut lon = 11.0 + rng.gen_range(-3.0..3.0);
            let trace = (0..fixes_per_vehicle)
                .map(|k| {
                    lat += rng.gen_range(-0.01..0.01);
                    lon += rng.gen_range(-0.01..0.01);
                    GeoFix {
                        lat,
                        lon,
                        t: k as u64 * 60,
                    }
                })
                .collect();
            VehicleRecord {
                vin: format!("WVWZZZ{i:011}"),
                owner: format!("Owner {i}"),
                email: format!("owner{i}@example.com"),
                sensitive: rng.chance(0.01),
                trace,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_requested_shape() {
        let mut rng = SimRng::seed(1);
        let fleet = generate_fleet(100, 10, &mut rng);
        assert_eq!(fleet.len(), 100);
        assert!(fleet.iter().all(|v| v.trace.len() == 10));
        assert!(fleet.iter().all(|v| v.vin.starts_with("WVWZZZ")));
    }

    #[test]
    fn vins_are_unique() {
        let mut rng = SimRng::seed(2);
        let fleet = generate_fleet(500, 1, &mut rng);
        let mut vins: Vec<&str> = fleet.iter().map(|v| v.vin.as_str()).collect();
        vins.sort_unstable();
        vins.dedup();
        assert_eq!(vins.len(), 500);
    }

    #[test]
    fn some_owners_are_sensitive() {
        let mut rng = SimRng::seed(3);
        let fleet = generate_fleet(5000, 1, &mut rng);
        let sensitive = fleet.iter().filter(|v| v.sensitive).count();
        // ~1% of 5000 = ~50; allow wide slack.
        assert!((10..150).contains(&sensitive), "{sensitive}");
    }

    #[test]
    fn pii_weight_counts_fixes() {
        let mut rng = SimRng::seed(4);
        let fleet = generate_fleet(1, 7, &mut rng);
        assert_eq!(fleet[0].pii_weight(), 10);
    }

    #[test]
    fn traces_are_plausible_walks() {
        let mut rng = SimRng::seed(5);
        let fleet = generate_fleet(1, 100, &mut rng);
        for w in fleet[0].trace.windows(2) {
            assert!((w[1].lat - w[0].lat).abs() < 0.02);
            assert!(w[1].t > w[0].t);
        }
    }
}
