//! CAN intrusion detectors over [`autosec_ivn::bus::BusEvent`] logs.
//!
//! All detectors follow the same two-phase protocol: [`train`] on a
//! known-clean log, then [`analyze`] a suspect log and emit [`Alert`]s.
//!
//! [`train`]: FrequencyDetector::train
//! [`analyze`]: FrequencyDetector::analyze

use std::collections::{BTreeSet, HashMap};

use autosec_ivn::bus::BusEvent;
use autosec_sim::{SimTime, Summary};

use crate::Alert;

/// Specification-based detector: a whitelist of CAN ids (and the
/// maximum DLC per id, learned or configured).
#[derive(Debug, Clone)]
pub struct SpecificationDetector {
    allowed: BTreeSet<u32>,
}

impl SpecificationDetector {
    /// Creates from an explicit id whitelist.
    pub fn new(allowed: impl IntoIterator<Item = u32>) -> Self {
        Self {
            allowed: allowed.into_iter().collect(),
        }
    }

    /// Learns the whitelist from a clean log.
    pub fn train(log: &[BusEvent]) -> Self {
        Self {
            allowed: log.iter().map(|e| e.frame.id().raw()).collect(),
        }
    }

    /// Whether an id is allowed.
    pub fn allows(&self, id: u32) -> bool {
        self.allowed.contains(&id)
    }

    /// Scans a log for unknown identifiers.
    pub fn analyze(&self, log: &[BusEvent]) -> Vec<Alert> {
        log.iter()
            .filter(|e| !self.allows(e.frame.id().raw()))
            .map(|e| Alert {
                detector: "specification",
                subject: e.frame.id().raw(),
                at: e.completed,
                detail: format!("unknown CAN id {}", e.frame.id()),
            })
            .collect()
    }
}

/// Frequency detector: learns per-id message rates and alerts on
/// significant rate increases (injection/masquerade doubles the rate of
/// the spoofed id).
#[derive(Debug, Clone)]
pub struct FrequencyDetector {
    /// Learned messages-per-second per id.
    baseline: HashMap<u32, f64>,
    /// Multiplicative tolerance before alerting.
    pub tolerance: f64,
}

fn rate_per_id(log: &[BusEvent], horizon: SimTime) -> HashMap<u32, f64> {
    let secs = horizon.as_secs_f64().max(1e-9);
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for e in log {
        *counts.entry(e.frame.id().raw()).or_default() += 1;
    }
    counts
        .into_iter()
        .map(|(id, c)| (id, c as f64 / secs))
        .collect()
}

impl FrequencyDetector {
    /// Learns the baseline from a clean log spanning `horizon`.
    pub fn train(log: &[BusEvent], horizon: SimTime) -> Self {
        Self {
            baseline: rate_per_id(log, horizon),
            tolerance: 1.5,
        }
    }

    /// Compares a suspect log's rates against the baseline.
    pub fn analyze(&self, log: &[BusEvent], horizon: SimTime) -> Vec<Alert> {
        let observed = rate_per_id(log, horizon);
        let mut alerts = Vec::new();
        for (id, rate) in observed {
            let base = self.baseline.get(&id).copied().unwrap_or(0.0);
            if base == 0.0 {
                continue; // unknown ids are the specification detector's job
            }
            if rate > base * self.tolerance {
                alerts.push(Alert {
                    detector: "frequency",
                    subject: id,
                    at: horizon,
                    detail: format!("rate {rate:.1}/s exceeds baseline {base:.1}/s"),
                });
            }
        }
        alerts.sort_by_key(|a| a.subject);
        alerts
    }
}

/// Inter-arrival timing detector: periodic ids must stay periodic;
/// injected extras produce anomalously short gaps.
#[derive(Debug, Clone)]
pub struct IntervalDetector {
    /// Learned mean inter-arrival per id (µs).
    baseline_us: HashMap<u32, f64>,
    /// Fraction of the mean below which a gap is anomalous.
    pub min_gap_fraction: f64,
}

fn intervals_per_id(log: &[BusEvent]) -> HashMap<u32, Vec<f64>> {
    let mut last: HashMap<u32, SimTime> = HashMap::new();
    let mut out: HashMap<u32, Vec<f64>> = HashMap::new();
    for e in log {
        let id = e.frame.id().raw();
        if let Some(prev) = last.insert(id, e.enqueued) {
            out.entry(id)
                .or_default()
                .push(e.enqueued.saturating_since(prev).as_us_f64());
        }
    }
    out
}

impl IntervalDetector {
    /// Learns per-id periods from a clean log.
    pub fn train(log: &[BusEvent]) -> Self {
        let baseline_us = intervals_per_id(log)
            .into_iter()
            .map(|(id, gaps)| (id, Summary::of(&gaps).mean))
            .collect();
        Self {
            baseline_us,
            min_gap_fraction: 0.5,
        }
    }

    /// Flags anomalously short gaps in a suspect log.
    pub fn analyze(&self, log: &[BusEvent]) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut last: HashMap<u32, SimTime> = HashMap::new();
        for e in log {
            let id = e.frame.id().raw();
            if let Some(prev) = last.insert(id, e.enqueued) {
                let gap = e.enqueued.saturating_since(prev).as_us_f64();
                if let Some(&base) = self.baseline_us.get(&id) {
                    if base > 0.0 && gap < base * self.min_gap_fraction {
                        alerts.push(Alert {
                            detector: "interval",
                            subject: id,
                            at: e.enqueued,
                            detail: format!("gap {gap:.0}us << period {base:.0}us"),
                        });
                    }
                }
            }
        }
        alerts
    }
}

/// EASI-style sender fingerprinting (paper ref \[52\]): learns the analog
/// signature each CAN id is normally transmitted with; a matching id
/// with a foreign signature is a masquerade.
#[derive(Debug, Clone)]
pub struct FingerprintDetector {
    /// Learned (mean, stddev) per id.
    baseline: HashMap<u32, (f64, f64)>,
    /// Alert threshold in standard deviations.
    pub sigma: f64,
}

impl FingerprintDetector {
    /// Learns per-id fingerprints from a clean log.
    pub fn train(log: &[BusEvent]) -> Self {
        let mut samples: HashMap<u32, Vec<f64>> = HashMap::new();
        for e in log {
            samples
                .entry(e.frame.id().raw())
                .or_default()
                .push(e.analog_fingerprint);
        }
        let baseline = samples
            .into_iter()
            .map(|(id, s)| {
                let sum = Summary::of(&s);
                // Floor the stddev: clean training sets can be tiny.
                (id, (sum.mean, sum.stddev.max(0.05)))
            })
            .collect();
        Self {
            baseline,
            sigma: 4.0,
        }
    }

    /// Flags frames whose analog signature does not match their id's
    /// learned transmitter.
    pub fn analyze(&self, log: &[BusEvent]) -> Vec<Alert> {
        log.iter()
            .filter_map(|e| {
                let id = e.frame.id().raw();
                let (mean, sd) = self.baseline.get(&id)?;
                let dev = (e.analog_fingerprint - mean).abs() / sd;
                (dev > self.sigma).then(|| Alert {
                    detector: "fingerprint",
                    subject: id,
                    at: e.completed,
                    detail: format!(
                        "signature {:.2} is {dev:.1} sigma off",
                        e.analog_fingerprint
                    ),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_ivn::attacks::MasqueradeAttack;
    use autosec_ivn::bus::CanBus;
    use autosec_ivn::can::{CanFrame, CanId};
    use autosec_sim::SimDuration;

    /// Builds a clean bus with two periodic senders, returns the log.
    fn clean_log(horizon_ms: u64) -> Vec<BusEvent> {
        let mut bus = CanBus::new(500_000);
        let a = bus.add_node(2.0);
        let b = bus.add_node(3.0);
        let mut t = SimTime::ZERO;
        while t <= SimTime::from_ms(horizon_ms) {
            bus.enqueue(
                a,
                t,
                CanFrame::new(CanId::standard(0x0A0).unwrap(), &[1; 8]).unwrap(),
            )
            .unwrap();
            bus.enqueue(
                b,
                t,
                CanFrame::new(CanId::standard(0x1B0).unwrap(), &[2; 4]).unwrap(),
            )
            .unwrap();
            t += SimDuration::from_ms(10);
        }
        bus.run(SimTime::from_secs(10))
    }

    /// Same traffic plus a masquerade attacker spoofing 0x0A0.
    fn attacked_log(horizon_ms: u64) -> Vec<BusEvent> {
        let mut bus = CanBus::new(500_000);
        let a = bus.add_node(2.0);
        let b = bus.add_node(3.0);
        let attacker = bus.add_node(7.5);
        let mut t = SimTime::ZERO;
        while t <= SimTime::from_ms(horizon_ms) {
            bus.enqueue(
                a,
                t,
                CanFrame::new(CanId::standard(0x0A0).unwrap(), &[1; 8]).unwrap(),
            )
            .unwrap();
            bus.enqueue(
                b,
                t,
                CanFrame::new(CanId::standard(0x1B0).unwrap(), &[2; 4]).unwrap(),
            )
            .unwrap();
            t += SimDuration::from_ms(10);
        }
        MasqueradeAttack {
            attacker,
            spoofed_id: 0x0A0,
            period: SimDuration::from_ms(7),
            payload: [0xFF; 8],
        }
        .inject(&mut bus, SimTime::from_ms(3), SimTime::from_ms(horizon_ms))
        .unwrap();
        bus.run(SimTime::from_secs(10))
    }

    #[test]
    fn clean_traffic_raises_nothing() {
        let train = clean_log(500);
        let test = clean_log(500);
        let horizon = SimTime::from_ms(500);
        assert!(SpecificationDetector::train(&train)
            .analyze(&test)
            .is_empty());
        assert!(FrequencyDetector::train(&train, horizon)
            .analyze(&test, horizon)
            .is_empty());
        assert!(IntervalDetector::train(&train).analyze(&test).is_empty());
        assert!(FingerprintDetector::train(&train).analyze(&test).is_empty());
    }

    #[test]
    fn specification_catches_unknown_id() {
        let train = clean_log(200);
        let det = SpecificationDetector::train(&train);
        let mut bus = CanBus::new(500_000);
        let x = bus.add_node(9.0);
        bus.enqueue(
            x,
            SimTime::ZERO,
            CanFrame::new(CanId::standard(0x666).unwrap(), &[0; 2]).unwrap(),
        )
        .unwrap();
        let log = bus.run(SimTime::from_secs(1));
        let alerts = det.analyze(&log);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].subject, 0x666);
    }

    #[test]
    fn frequency_catches_masquerade_rate_increase() {
        let horizon = SimTime::from_ms(500);
        let det = FrequencyDetector::train(&clean_log(500), horizon);
        let alerts = det.analyze(&attacked_log(500), horizon);
        assert!(alerts.iter().any(|a| a.subject == 0x0A0), "{alerts:?}");
        assert!(alerts.iter().all(|a| a.subject != 0x1B0));
    }

    #[test]
    fn interval_catches_injected_extras() {
        let det = IntervalDetector::train(&clean_log(500));
        let alerts = det.analyze(&attacked_log(500));
        assert!(!alerts.is_empty());
        assert!(alerts.iter().all(|a| a.subject == 0x0A0));
    }

    #[test]
    fn fingerprint_catches_foreign_transmitter() {
        let det = FingerprintDetector::train(&clean_log(500));
        let alerts = det.analyze(&attacked_log(500));
        // Attacker node fingerprint 7.5 vs legit 2.0.
        assert!(alerts.len() > 10, "{}", alerts.len());
        assert!(alerts.iter().all(|a| a.subject == 0x0A0));
    }

    #[test]
    fn fingerprint_tolerates_legit_noise() {
        let det = FingerprintDetector::train(&clean_log(1000));
        let fp = det.analyze(&clean_log(300));
        assert!(fp.len() <= 1, "false positives: {}", fp.len());
    }
}
