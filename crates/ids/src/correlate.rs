//! Cross-layer alert correlation (§VIII: "security measures implemented
//! at different layers will not be effective unless they are designed to
//! work in synergy with one another").
//!
//! Alerts from any layer (physical-layer ranging rejections, network
//! IDS, data-layer exfiltration detectors...) are tagged with their
//! origin layer and fused into **incidents** by temporal proximity.
//! Coverage metrics per layer and for the fused view quantify the
//! paper's synergy argument (experiment E13).

use autosec_sim::{ArchLayer, SimDuration, SimTime};

/// A layer-tagged alert.
///
/// The tag is the workspace-wide [`ArchLayer`] — alerts from any
/// subsystem correlate without an enum-to-enum mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerAlert {
    /// Originating layer.
    pub layer: ArchLayer,
    /// Time of the alert.
    pub at: SimTime,
    /// Which attack campaign step it (correctly or not) points at.
    pub attack_id: Option<usize>,
    /// Free-form description.
    pub detail: String,
}

/// A fused incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// First alert time.
    pub started: SimTime,
    /// Last alert time.
    pub ended: SimTime,
    /// Contributing layers (sorted, deduplicated).
    pub layers: Vec<ArchLayer>,
    /// Attack ids implicated.
    pub attack_ids: Vec<usize>,
    /// Number of alerts fused.
    pub alert_count: usize,
}

/// Correlates alerts into incidents: alerts within `window` of the
/// incident's last alert join it; otherwise a new incident opens.
/// Input is sorted by time internally.
pub fn correlate(mut alerts: Vec<LayerAlert>, window: SimDuration) -> Vec<Incident> {
    alerts.sort_by_key(|a| a.at);
    let mut incidents: Vec<Incident> = Vec::new();
    for a in alerts {
        let joins = incidents
            .last()
            .map(|i| a.at.saturating_since(i.ended) <= window)
            .unwrap_or(false);
        if joins {
            let i = incidents.last_mut().expect("nonempty");
            i.ended = a.at;
            if !i.layers.contains(&a.layer) {
                i.layers.push(a.layer);
                i.layers.sort();
            }
            if let Some(id) = a.attack_id {
                if !i.attack_ids.contains(&id) {
                    i.attack_ids.push(id);
                }
            }
            i.alert_count += 1;
        } else {
            incidents.push(Incident {
                started: a.at,
                ended: a.at,
                layers: vec![a.layer],
                attack_ids: a.attack_id.into_iter().collect(),
                alert_count: 1,
            });
        }
    }
    incidents
}

/// Fraction of `n_attacks` campaign steps that at least one alert from
/// `layer` pointed at.
pub fn layer_coverage(alerts: &[LayerAlert], layer: ArchLayer, n_attacks: usize) -> f64 {
    if n_attacks == 0 {
        return 1.0;
    }
    let mut covered = vec![false; n_attacks];
    for a in alerts.iter().filter(|a| a.layer == layer) {
        if let Some(id) = a.attack_id {
            if id < n_attacks {
                covered[id] = true;
            }
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / n_attacks as f64
}

/// Coverage of the fused multi-layer view.
pub fn fused_coverage(alerts: &[LayerAlert], n_attacks: usize) -> f64 {
    if n_attacks == 0 {
        return 1.0;
    }
    let mut covered = vec![false; n_attacks];
    for a in alerts {
        if let Some(id) = a.attack_id {
            if id < n_attacks {
                covered[id] = true;
            }
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / n_attacks as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn la(layer: ArchLayer, ms: u64, attack: Option<usize>) -> LayerAlert {
        LayerAlert {
            layer,
            at: SimTime::from_ms(ms),
            attack_id: attack,
            detail: String::new(),
        }
    }

    #[test]
    fn temporal_clustering() {
        let alerts = vec![
            la(ArchLayer::Network, 10, Some(0)),
            la(ArchLayer::Physical, 15, Some(0)),
            la(ArchLayer::Data, 500, Some(1)),
        ];
        let incidents = correlate(alerts, SimDuration::from_ms(50));
        assert_eq!(incidents.len(), 2);
        assert_eq!(
            incidents[0].layers,
            vec![ArchLayer::Physical, ArchLayer::Network]
        );
        assert_eq!(incidents[0].alert_count, 2);
        assert_eq!(incidents[1].attack_ids, vec![1]);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let alerts = vec![
            la(ArchLayer::Data, 500, None),
            la(ArchLayer::Network, 10, None),
            la(ArchLayer::Physical, 15, None),
        ];
        let incidents = correlate(alerts, SimDuration::from_ms(50));
        assert_eq!(incidents.len(), 2);
        assert!(incidents[0].started < incidents[1].started);
    }

    #[test]
    fn chained_alerts_extend_an_incident() {
        // Each alert within `window` of the previous one keeps the
        // incident open — a slow-burn campaign fuses into one incident.
        let alerts: Vec<LayerAlert> = (0..10)
            .map(|i| la(ArchLayer::Network, i * 40, Some(0)))
            .collect();
        let incidents = correlate(alerts, SimDuration::from_ms(50));
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].alert_count, 10);
    }

    #[test]
    fn coverage_metrics() {
        let alerts = vec![
            la(ArchLayer::Network, 1, Some(0)),
            la(ArchLayer::Network, 2, Some(1)),
            la(ArchLayer::Physical, 3, Some(2)),
            la(ArchLayer::Data, 4, None),
        ];
        assert_eq!(layer_coverage(&alerts, ArchLayer::Network, 4), 0.5);
        assert_eq!(layer_coverage(&alerts, ArchLayer::Physical, 4), 0.25);
        assert_eq!(layer_coverage(&alerts, ArchLayer::Data, 4), 0.0);
        assert_eq!(fused_coverage(&alerts, 4), 0.75);
        // Fused view strictly dominates each single layer here.
        for l in [ArchLayer::Network, ArchLayer::Physical, ArchLayer::Data] {
            assert!(fused_coverage(&alerts, 4) >= layer_coverage(&alerts, l, 4));
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(correlate(Vec::new(), SimDuration::from_ms(10)).is_empty());
        assert_eq!(fused_coverage(&[], 0), 1.0);
    }
}
