//! Data-layer fault-injection adapter for `autosec-faults`.
//!
//! [`TimesyncFaultTarget`] models the vehicle's time base under a
//! unidirectional PTP delay attack ([`FaultEffect::ClockSkew`]): the
//! slave clock silently shifts by half the injected delay, degrading
//! every freshness- and fusion-dependent consumer. A defended
//! deployment provisions a redundant sync path and runs the
//! PTPsec-style cross-path detector; an undefended one has a single
//! path and cannot see the shift at all.

use autosec_sim::inject::{FaultEffect, FaultTarget, InjectionRecord};
use autosec_sim::{ArchLayer, SimRng, SimTime};

use crate::timesync::{PtpPath, PtpsecDetector};

/// Time synchronization under clock-skew (delay) faults.
#[derive(Debug, Clone)]
pub struct TimesyncFaultTarget {
    /// Synchronization error tolerated by downstream consumers (ns).
    pub tolerance_ns: f64,
}

impl Default for TimesyncFaultTarget {
    fn default() -> Self {
        Self {
            tolerance_ns: 200.0,
        }
    }
}

impl FaultTarget for TimesyncFaultTarget {
    fn layer(&self) -> ArchLayer {
        ArchLayer::Data
    }

    fn name(&self) -> &'static str {
        "ids-timesync"
    }

    fn apply(
        &mut self,
        effects: &[FaultEffect],
        defended: bool,
        rng: &mut SimRng,
    ) -> InjectionRecord {
        let skew_ns = effects
            .iter()
            .map(|e| match *e {
                FaultEffect::ClockSkew { skew_ns } => skew_ns,
                _ => 0.0,
            })
            .fold(0.0f64, f64::max);
        if skew_ns <= 0.0 {
            return InjectionRecord::clean(self.layer(), self.name());
        }

        let attacked = PtpPath::symmetric(5_000.0, 50.0).attacked(skew_ns);
        let paths = if defended {
            vec![attacked, PtpPath::symmetric(7_000.0, 50.0)]
        } else {
            vec![attacked]
        };
        let detector = PtpsecDetector::default();
        let (offsets, alert) = detector.analyze(&paths, SimTime::ZERO, rng);
        let err_ns = offsets[0].abs();
        let health = if err_ns <= self.tolerance_ns {
            1.0
        } else {
            self.tolerance_ns / err_ns
        };
        InjectionRecord {
            layer: self.layer(),
            target: self.name(),
            applied: true,
            health,
            detected: defended && alert.is_some(),
            detail: format!("slave clock off by {err_ns:.0} ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(effects: &[FaultEffect], defended: bool) -> InjectionRecord {
        let mut t = TimesyncFaultTarget::default();
        let mut rng = SimRng::seed(88).fork("ids-fault");
        t.apply(effects, defended, &mut rng)
    }

    #[test]
    fn no_effects_is_clean() {
        let rec = apply(&[], true);
        assert_eq!(rec, InjectionRecord::clean(ArchLayer::Data, "ids-timesync"));
    }

    #[test]
    fn skew_degrades_health_monotonically() {
        let small = apply(&[FaultEffect::ClockSkew { skew_ns: 1_000.0 }], false);
        let large = apply(&[FaultEffect::ClockSkew { skew_ns: 10_000.0 }], false);
        assert!(
            small.health > large.health,
            "{} vs {}",
            small.health,
            large.health
        );
        assert!(!small.detected, "single path cannot see the shift");
    }

    #[test]
    fn redundant_path_detects_large_skew() {
        let rec = apply(&[FaultEffect::ClockSkew { skew_ns: 2_000.0 }], true);
        assert!(rec.detected);
        assert!(rec.health < 1.0);
    }

    #[test]
    fn sub_tolerance_skew_is_harmless() {
        let rec = apply(&[FaultEffect::ClockSkew { skew_ns: 100.0 }], false);
        assert_eq!(rec.health, 1.0, "{}", rec.detail);
        assert!(rec.applied);
    }

    #[test]
    fn deterministic_per_substream() {
        let a = apply(&[FaultEffect::ClockSkew { skew_ns: 3_000.0 }], true);
        let b = apply(&[FaultEffect::ClockSkew { skew_ns: 3_000.0 }], true);
        assert_eq!(a, b);
    }
}
