//! Time-synchronization security: PTP delay attacks and PTPsec-style
//! detection via path redundancy (paper ref \[53\]).
//!
//! Standard PTP estimates the clock offset assuming symmetric path
//! delays; an on-path attacker who delays only one direction by `d`
//! silently shifts the slave clock by `d/2` — invisible to PTP itself,
//! and fatal to freshness-based security protocols and sensor fusion.
//! PTPsec's insight (cyclic path asymmetry analysis) is modelled here by
//! its redundancy core: offsets measured over disjoint paths must agree;
//! an attacker on one path creates a measurable inconsistency.

use autosec_sim::SimRng;

use crate::Alert;

/// One network path between master and slave clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtpPath {
    /// Master→slave delay in nanoseconds.
    pub forward_ns: f64,
    /// Slave→master delay in nanoseconds.
    pub reverse_ns: f64,
    /// One-sigma timestamping jitter in nanoseconds.
    pub jitter_ns: f64,
}

impl PtpPath {
    /// A symmetric path.
    pub fn symmetric(delay_ns: f64, jitter_ns: f64) -> Self {
        Self {
            forward_ns: delay_ns,
            reverse_ns: delay_ns,
            jitter_ns,
        }
    }

    /// Applies a unidirectional delay attack of `extra_ns` on the
    /// forward direction.
    pub fn attacked(mut self, extra_ns: f64) -> Self {
        self.forward_ns += extra_ns;
        self
    }

    /// Simulates one PTP two-step exchange; returns the offset the slave
    /// *computes* minus the true offset — i.e. the synchronization error
    /// in nanoseconds.
    pub fn sync_error_ns(&self, rng: &mut SimRng) -> f64 {
        // offset_est = ((t2-t1) - (t4-t3))/2 = (fwd - rev)/2 + jitter.
        (self.forward_ns - self.reverse_ns) / 2.0
            + rng.normal_with(0.0, self.jitter_ns / 2.0_f64.sqrt())
    }
}

/// PTPsec-style detector: compares offsets across redundant paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtpsecDetector {
    /// Alert threshold on inter-path offset disagreement (ns).
    pub threshold_ns: f64,
    /// Number of exchanges averaged per path.
    pub samples: usize,
}

impl Default for PtpsecDetector {
    fn default() -> Self {
        Self {
            threshold_ns: 100.0,
            samples: 16,
        }
    }
}

impl PtpsecDetector {
    /// Measures every path and alerts if any pair disagrees by more than
    /// the threshold. Returns (per-path mean offsets, optional alert).
    pub fn analyze(
        &self,
        paths: &[PtpPath],
        at: autosec_sim::SimTime,
        rng: &mut SimRng,
    ) -> (Vec<f64>, Option<Alert>) {
        let offsets: Vec<f64> = paths
            .iter()
            .map(|p| {
                (0..self.samples).map(|_| p.sync_error_ns(rng)).sum::<f64>() / self.samples as f64
            })
            .collect();
        let mut alert = None;
        'outer: for (i, a) in offsets.iter().enumerate() {
            for (j, b) in offsets.iter().enumerate().skip(i + 1) {
                if (a - b).abs() > self.threshold_ns {
                    alert = Some(Alert {
                        detector: "ptpsec",
                        subject: j as u32,
                        at,
                        detail: format!("paths {i} and {j} disagree by {:.0} ns", (a - b).abs()),
                    });
                    break 'outer;
                }
            }
        }
        (offsets, alert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_sim::SimTime;

    fn rng() -> SimRng {
        SimRng::seed(88)
    }

    #[test]
    fn symmetric_path_syncs_accurately() {
        let p = PtpPath::symmetric(5_000.0, 50.0);
        let mut r = rng();
        let errs: Vec<f64> = (0..200).map(|_| p.sync_error_ns(&mut r)).collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean.abs() < 20.0, "{mean}");
    }

    #[test]
    fn delay_attack_shifts_clock_by_half() {
        let p = PtpPath::symmetric(5_000.0, 0.0).attacked(2_000.0);
        let mut r = rng();
        let err = p.sync_error_ns(&mut r);
        assert!((err - 1_000.0).abs() < 1.0, "{err}");
    }

    #[test]
    fn single_path_cannot_detect() {
        // The core PTP weakness: with one path, the shifted offset looks
        // perfectly normal.
        let det = PtpsecDetector::default();
        let attacked = PtpPath::symmetric(5_000.0, 50.0).attacked(2_000.0);
        let (_, alert) = det.analyze(&[attacked], SimTime::ZERO, &mut rng());
        assert!(alert.is_none(), "one path gives no reference");
    }

    #[test]
    fn redundant_path_exposes_the_attack() {
        let det = PtpsecDetector::default();
        let clean = PtpPath::symmetric(5_000.0, 50.0);
        let attacked = PtpPath::symmetric(7_000.0, 50.0).attacked(2_000.0);
        let (offsets, alert) = det.analyze(&[clean, attacked], SimTime::ZERO, &mut rng());
        let a = alert.expect("disagreement must alert");
        assert_eq!(a.detector, "ptpsec");
        assert!((offsets[0] - offsets[1]).abs() > 900.0);
    }

    #[test]
    fn no_false_alarm_on_two_clean_paths() {
        let det = PtpsecDetector::default();
        let p1 = PtpPath::symmetric(5_000.0, 50.0);
        let p2 = PtpPath::symmetric(9_000.0, 50.0); // different but symmetric
        let (_, alert) = det.analyze(&[p1, p2], SimTime::ZERO, &mut rng());
        assert!(alert.is_none());
    }

    #[test]
    fn small_attacks_below_threshold_slip_through() {
        // Honest limitation: detection resolution is the threshold.
        let det = PtpsecDetector::default();
        let clean = PtpPath::symmetric(5_000.0, 10.0);
        let slightly = PtpPath::symmetric(5_000.0, 10.0).attacked(100.0); // 50 ns shift
        let (_, alert) = det.analyze(&[clean, slightly], SimTime::ZERO, &mut rng());
        assert!(alert.is_none());
    }
}
