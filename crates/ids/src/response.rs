//! Autonomous intrusion response (REACT-style, paper ref \[56\]).
//!
//! Alerts map to playbooks; each playbook has a containment action, a
//! cost class (availability impact), and a containment latency. The
//! engine picks the cheapest playbook that covers the alert, escalating
//! on repeated alerts for the same subject.

use std::collections::HashMap;

use autosec_sim::{SimDuration, SimTime};

use crate::Alert;

/// A response action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseAction {
    /// Drop matching frames at the gateway.
    FilterId,
    /// Force a session rekey (SECOC/MACsec).
    Rekey,
    /// Isolate the suspected node (bus-off command / port shut).
    IsolateNode,
    /// Degrade to limp-home mode (minimal functionality, maximal
    /// safety).
    LimpHome,
    /// Notify the backend SOC only.
    Notify,
}

impl ResponseAction {
    /// Availability cost class (0 = free, 3 = severe).
    pub fn cost(self) -> u8 {
        match self {
            ResponseAction::Notify => 0,
            ResponseAction::FilterId => 1,
            ResponseAction::Rekey => 1,
            ResponseAction::IsolateNode => 2,
            ResponseAction::LimpHome => 3,
        }
    }

    /// Typical containment latency.
    pub fn latency(self) -> SimDuration {
        match self {
            ResponseAction::Notify => SimDuration::from_ms(500),
            ResponseAction::FilterId => SimDuration::from_ms(5),
            ResponseAction::Rekey => SimDuration::from_ms(50),
            ResponseAction::IsolateNode => SimDuration::from_ms(20),
            ResponseAction::LimpHome => SimDuration::from_ms(100),
        }
    }
}

/// A chosen response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The triggering alert subject.
    pub subject: u32,
    /// Chosen action.
    pub action: ResponseAction,
    /// When containment completes.
    pub contained_at: SimTime,
}

/// The response engine with escalation state.
#[derive(Debug, Clone, Default)]
pub struct ResponseEngine {
    /// Alerts seen per subject.
    strikes: HashMap<u32, u32>,
    /// History of responses issued.
    history: Vec<Response>,
    /// Maximum retained history entries (`None` = unbounded, the
    /// batch-experiment default).
    history_cap: Option<usize>,
}

impl ResponseEngine {
    /// New engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// New engine retaining at most `cap` history entries — required
    /// for long-running service mode, where an unbounded response log
    /// would grow with wall-of-ticks. Oldest entries are dropped first;
    /// escalation state (per-subject strikes) is unaffected by the cap.
    pub fn with_history_cap(cap: usize) -> Self {
        Self {
            history_cap: Some(cap),
            ..Self::default()
        }
    }

    /// Clears escalation state for one subject — called when a
    /// subject's repair has been verified, so a later unrelated alert
    /// starts from the cheapest playbook again.
    pub fn clear_subject(&mut self, subject: u32) {
        self.strikes.remove(&subject);
    }

    /// Default playbook for a detector type.
    fn playbook(detector: &str, strikes: u32) -> ResponseAction {
        let base = match detector {
            "specification" => ResponseAction::FilterId,
            "frequency" => ResponseAction::FilterId,
            "interval" => ResponseAction::Rekey,
            "fingerprint" => ResponseAction::IsolateNode,
            _ => ResponseAction::Notify,
        };
        // Escalate after repeated strikes on the same subject.
        match (base, strikes) {
            (_, s) if s >= 5 => ResponseAction::LimpHome,
            (ResponseAction::FilterId, s) if s >= 3 => ResponseAction::IsolateNode,
            (b, _) => b,
        }
    }

    /// Alerts recorded against `subject` so far.
    pub fn strikes(&self, subject: u32) -> u32 {
        self.strikes.get(&subject).copied().unwrap_or(0)
    }

    /// The action [`Self::handle`] would issue for `alert`, without
    /// recording the strike or the response — lets an external
    /// decision loop (the autodefense policy) preview the playbook's
    /// escalation level before committing budget to it.
    pub fn peek(&self, alert: &Alert) -> ResponseAction {
        Self::playbook(alert.detector, self.strikes(alert.subject) + 1)
    }

    /// Handles one alert, issuing a response.
    pub fn handle(&mut self, alert: &Alert) -> Response {
        let strikes = self.strikes.entry(alert.subject).or_insert(0);
        *strikes += 1;
        let action = Self::playbook(alert.detector, *strikes);
        let response = Response {
            subject: alert.subject,
            action,
            contained_at: alert.at + action.latency(),
        };
        self.history.push(response.clone());
        if let Some(cap) = self.history_cap {
            if self.history.len() > cap {
                let excess = self.history.len() - cap;
                self.history.drain(..excess);
            }
        }
        response
    }

    /// All responses issued.
    pub fn history(&self) -> &[Response] {
        &self.history
    }

    /// Mean containment latency (alert → contained) in milliseconds.
    pub fn mean_containment_ms(&self, alerts: &[Alert]) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .history
            .iter()
            .zip(alerts.iter())
            .map(|(r, a)| r.contained_at.saturating_since(a.at).as_ms_f64())
            .sum();
        total / self.history.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(detector: &'static str, subject: u32, ms: u64) -> Alert {
        Alert {
            detector,
            subject,
            at: SimTime::from_ms(ms),
            detail: String::new(),
        }
    }

    #[test]
    fn playbooks_match_detectors() {
        let mut e = ResponseEngine::new();
        assert_eq!(
            e.handle(&alert("specification", 1, 0)).action,
            ResponseAction::FilterId
        );
        assert_eq!(
            e.handle(&alert("fingerprint", 2, 0)).action,
            ResponseAction::IsolateNode
        );
        assert_eq!(
            e.handle(&alert("interval", 3, 0)).action,
            ResponseAction::Rekey
        );
        assert_eq!(
            e.handle(&alert("unknown-detector", 4, 0)).action,
            ResponseAction::Notify
        );
    }

    #[test]
    fn escalation_on_repeat_offenders() {
        let mut e = ResponseEngine::new();
        let mut last = ResponseAction::Notify;
        for i in 0..6 {
            last = e.handle(&alert("frequency", 0x0A0, i * 10)).action;
        }
        assert_eq!(last, ResponseAction::LimpHome);
        // Third strike escalated filter -> isolate.
        assert_eq!(e.history()[2].action, ResponseAction::IsolateNode);
    }

    #[test]
    fn containment_latency_accumulates() {
        let mut e = ResponseEngine::new();
        let alerts = vec![alert("specification", 1, 10), alert("fingerprint", 2, 20)];
        for a in &alerts {
            e.handle(a);
        }
        let mean = e.mean_containment_ms(&alerts);
        // (5 + 20) / 2 = 12.5 ms.
        assert!((mean - 12.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn costs_are_ordered() {
        assert!(ResponseAction::Notify.cost() < ResponseAction::FilterId.cost());
        assert!(ResponseAction::IsolateNode.cost() < ResponseAction::LimpHome.cost());
    }

    #[test]
    fn history_cap_bounds_memory_without_touching_strikes() {
        let mut e = ResponseEngine::with_history_cap(3);
        for i in 0..10 {
            e.handle(&alert("frequency", 0x0A0, i * 10));
        }
        assert_eq!(e.history().len(), 3, "oldest entries dropped");
        // Strikes kept accumulating past the cap: still escalated.
        assert_eq!(
            e.handle(&alert("frequency", 0x0A0, 200)).action,
            ResponseAction::LimpHome
        );
    }

    #[test]
    fn clear_subject_resets_escalation() {
        let mut e = ResponseEngine::new();
        for i in 0..5 {
            e.handle(&alert("frequency", 7, i));
        }
        assert_eq!(
            e.handle(&alert("frequency", 7, 50)).action,
            ResponseAction::LimpHome
        );
        e.clear_subject(7);
        assert_eq!(
            e.handle(&alert("frequency", 7, 60)).action,
            ResponseAction::FilterId,
            "verified recovery starts the playbook ladder over"
        );
    }

    #[test]
    fn peek_previews_handle_without_mutating() {
        let mut e = ResponseEngine::new();
        for i in 0..2 {
            e.handle(&alert("frequency", 9, i));
        }
        assert_eq!(e.strikes(9), 2);
        let next = alert("frequency", 9, 30);
        // Third strike escalates filter → isolate; peek sees it coming.
        assert_eq!(e.peek(&next), ResponseAction::IsolateNode);
        assert_eq!(e.strikes(9), 2, "peek records nothing");
        assert_eq!(e.history().len(), 2);
        // And handle then issues exactly what peek predicted.
        assert_eq!(e.handle(&next).action, ResponseAction::IsolateNode);
        assert_eq!(e.strikes(0xBEEF), 0, "unseen subjects have no strikes");
    }

    #[test]
    fn per_subject_strike_isolation() {
        let mut e = ResponseEngine::new();
        for i in 0..4 {
            e.handle(&alert("frequency", 0x100, i));
        }
        // A different subject starts fresh.
        let r = e.handle(&alert("frequency", 0x200, 100));
        assert_eq!(r.action, ResponseAction::FilterId);
    }
}
