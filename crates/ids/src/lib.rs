//! # autosec-ids
//!
//! Intrusion detection and response — the §VIII cross-cutting defense
//! layer: "intrusion detection systems that monitor network activity"
//! (refs \[51\]–\[53\]) and "autonomous intrusion response" (ref \[56\]).
//!
//! - [`detectors`] — four complementary CAN IDS techniques run over the
//!   `autosec-ivn` bus log: specification-based (unknown ids/DLCs),
//!   frequency-based, inter-arrival-timing, and EASI-style analog sender
//!   fingerprinting (ref \[52\] — catches masquerade even when the frame
//!   content is perfectly legitimate)
//! - [`response`] — a REACT-style response engine mapping alerts to
//!   playbooks with containment-time accounting
//! - [`correlate`] — cross-layer alert correlation into incidents, the
//!   "designed to work in synergy" argument of §VIII, measured in E13
//!
//! ## Example
//!
//! ```
//! use autosec_ids::detectors::SpecificationDetector;
//!
//! let det = SpecificationDetector::new([0x100, 0x200]);
//! assert!(det.allows(0x100));
//! assert!(!det.allows(0x666));
//! ```

pub mod correlate;
pub mod detectors;
pub mod faults;
pub mod response;
pub mod timesync;

/// An IDS alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Which detector fired.
    pub detector: &'static str,
    /// The CAN id (or other identifier) involved.
    pub subject: u32,
    /// Alert time.
    pub at: autosec_sim::SimTime,
    /// Human-readable detail.
    pub detail: String,
}
