//! Graph/registry consistency and calibration-tolerance tests.
//!
//! The attack graph promises to be *derived from code*: every scenario
//! step and every kill-chain stage must appear as exactly one edge on
//! the right layer, and the calibrated probabilities must agree with a
//! fresh Monte-Carlo estimate of the same model within sampling
//! tolerance. All streams are fixed-seed, so these are deterministic
//! checks, not flaky statistical ones.

use autosec_adversary::calibrate::{
    calibrated_graph, cascade_point, killchain_points, scenario_point, CalibrationConfig,
    DECOUPLING_SCALE,
};
use autosec_adversary::graph::{AttackGraph, EdgeSource};
use autosec_core::campaign::DefensePosture;
use autosec_core::scenario::scenario_registry;
use autosec_data::killchain::KillChainStage;
use autosec_data::service::DefenseConfig;
use autosec_sim::{ArchLayer, SimRng};
use autosec_sos::cascade::with_coupling_scale;
use autosec_sos::reference::maas_reference;

/// Trials per estimate in the tolerance test. Small enough to keep the
/// suite fast on one core; the tolerance below matches it.
const TRIALS: usize = 60;

/// Max |calibrated − fresh| for two independent estimates of the same
/// probability at `TRIALS` samples each (~2.5σ of the difference of two
/// binomial means at p = 0.5; the seeds are fixed, so this either
/// passes forever or fails deterministically).
const TOLERANCE: f64 = 0.22;

const SEEDS: [u64; 3] = [11, 42, 1234];

fn cfg() -> CalibrationConfig {
    CalibrationConfig::new(TRIALS, 1)
}

/// A cheap graph for the structural (non-probabilistic) checks.
fn structural_graph() -> AttackGraph {
    calibrated_graph(&CalibrationConfig::new(20, 1), &SimRng::seed(1))
}

#[test]
fn every_scenario_step_is_exactly_one_edge_on_its_layer() {
    let g = structural_graph();
    for step in scenario_registry() {
        let matching: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.source == EdgeSource::Scenario(step.name()))
            .collect();
        assert_eq!(matching.len(), 1, "{} edge count", step.name());
        assert_eq!(matching[0].layer, step.layer(), "{} layer", step.name());
        assert_eq!(matching[0].name, step.name());
    }
}

#[test]
fn every_killchain_stage_is_exactly_one_data_edge_in_chain_order() {
    let g = structural_graph();
    let mut prev_to = None;
    for stage in KillChainStage::ALL {
        let matching: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.source == EdgeSource::KillChain(stage))
            .collect();
        assert_eq!(matching.len(), 1, "{stage} edge count");
        let e = matching[0];
        assert_eq!(
            e.layer,
            ArchLayer::Data,
            "{stage} must sit on the data layer"
        );
        if let Some(p) = prev_to {
            assert_eq!(e.from, p, "{stage} must chain from the previous stage");
        }
        prev_to = Some(e.to);
    }
}

#[test]
fn cascade_edges_sit_on_the_sos_layer() {
    let g = structural_graph();
    let cascades: Vec<_> = g
        .edges()
        .iter()
        .filter(|e| matches!(e.source, EdgeSource::Cascade(_)))
        .collect();
    assert_eq!(cascades.len(), 5);
    for e in cascades {
        assert_eq!(e.layer, ArchLayer::SystemOfSystems, "{}", e.name);
        assert_eq!(e.to, AttackGraph::GOAL, "{}", e.name);
    }
}

#[test]
fn graph_connects_start_to_goal() {
    let g = structural_graph();
    // Reachability over edges with any nonzero undefended success.
    let mut reached = [false; 15];
    reached[AttackGraph::START.index()] = true;
    for _ in 0..g.len() {
        for e in g.edges() {
            if reached[e.from.index()] && e.undefended.success > 0.0 {
                reached[e.to.index()] = true;
            }
        }
    }
    assert!(
        reached[AttackGraph::GOAL.index()],
        "an undefended vehicle must be compromisable end-to-end"
    );
}

/// One pass per seed: calibrate a graph, then re-estimate every edge's
/// probabilities from an independent stream and compare. Covers
/// scenario, kill-chain, and cascade edges in a single calibration so
/// the expensive subsystem models run as few times as possible.
#[test]
fn calibrated_probabilities_match_fresh_estimates_within_tolerance() {
    let none = DefensePosture::none();
    let full = DefensePosture::full();
    let coupled = maas_reference();
    let decoupled = with_coupling_scale(&coupled, DECOUPLING_SCALE);
    for seed in SEEDS {
        let g = calibrated_graph(&cfg(), &SimRng::seed(seed));
        // An independent stream, never used by calibrated_graph.
        let fresh = SimRng::seed(seed).fork("fresh-estimate");

        let check = |name: &str, what: &str, got: f64, want: f64| {
            assert!(
                (got - want).abs() <= TOLERANCE,
                "seed {seed} {name} {what}: calibrated {got} vs fresh {want}"
            );
        };

        for step in scenario_registry() {
            let e = g
                .edge_for(&EdgeSource::Scenario(step.name()))
                .expect("scenario edge");
            let est_undef = scenario_point(
                step.as_ref(),
                &none,
                &fresh.fork(&format!("{}/undef", step.name())),
                &cfg(),
            );
            let est_def = scenario_point(
                step.as_ref(),
                &full,
                &fresh.fork(&format!("{}/def", step.name())),
                &cfg(),
            );
            check(
                e.name,
                "undef success",
                e.undefended.success,
                est_undef.success,
            );
            check(
                e.name,
                "undef detect",
                e.undefended.detect,
                est_undef.detect,
            );
            check(e.name, "def success", e.defended.success, est_def.success);
            check(e.name, "def detect", e.defended.detect, est_def.detect);
        }

        let kc_undef = killchain_points(DefenseConfig::none(), &fresh.fork("kc/undef"), &cfg());
        let kc_def = killchain_points(DefenseConfig::hardened(), &fresh.fork("kc/def"), &cfg());
        for (i, stage) in KillChainStage::ALL.into_iter().enumerate() {
            let e = g
                .edge_for(&EdgeSource::KillChain(stage))
                .expect("stage edge");
            check(
                e.name,
                "undef success",
                e.undefended.success,
                kc_undef[i].success,
            );
            check(
                e.name,
                "undef detect",
                e.undefended.detect,
                kc_undef[i].detect,
            );
            check(e.name, "def success", e.defended.success, kc_def[i].success);
            check(e.name, "def detect", e.defended.detect, kc_def[i].detect);
        }

        for e in g.edges() {
            let EdgeSource::Cascade(entry) = e.source else {
                continue;
            };
            let est_undef = cascade_point(
                &coupled,
                entry,
                &fresh.fork(&format!("{}/u", e.name)),
                &cfg(),
            );
            let est_def = cascade_point(
                &decoupled,
                entry,
                &fresh.fork(&format!("{}/d", e.name)),
                &cfg(),
            );
            check(
                e.name,
                "undef success",
                e.undefended.success,
                est_undef.success,
            );
            check(e.name, "def success", e.defended.success, est_def.success);
        }
    }
}
