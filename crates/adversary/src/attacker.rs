//! Attack execution: the adaptive planner-driven attacker and the
//! static replay attacker, plus the defender-side runtime knobs.
//!
//! Both attackers walk the same calibrated [`AttackGraph`] under the
//! same [`DefensePosture`] and step budget; the difference is
//! intelligence. The **replay** attacker fires the campaign's fixed
//! order (the repo's pre-existing behaviour: eight scenario attacks,
//! then the kill chain, then cascades) without reacting to anything.
//! The **adaptive** attacker calls [`best_path`] before every step and
//! re-plans whenever a step fails, is detected, or its tooling gets
//! isolated by the response engine.
//!
//! Defender runtime knobs (beyond the per-layer posture):
//!
//! * **Active response** — every alert is fed to
//!   [`ResponseEngine::handle`]; an action at least as severe as
//!   [`ResponseAction::IsolateNode`] *burns* the triggering edge (the
//!   foothold/tool it used is gone for the rest of the run).
//! * **Alert correlation** — once two or more alerts have fired, the
//!   SOC is watching: every later step's success probability is halved
//!   ([`CORRELATED_PENALTY`]).

use autosec_core::campaign::DefensePosture;
use autosec_ids::response::{ResponseAction, ResponseEngine};
use autosec_ids::Alert;
use autosec_sim::{ArchLayer, SimDuration, SimRng, SimTime};

use crate::graph::{AttackGraph, CapabilitySet, EdgeSet};
use crate::planner::{best_path_weighted, PlannedPath};

/// Success multiplier applied after alert correlation kicks in.
pub const CORRELATED_PENALTY: f64 = 0.5;

/// Alerts needed before correlation counts as an incident.
pub const CORRELATION_THRESHOLD: usize = 2;

/// How one attack run is parameterized.
#[derive(Debug, Clone, Copy)]
pub struct AttackConfig {
    /// Maximum attack steps (edge attempts).
    pub budget: usize,
    /// Defender feeds alerts to the response engine (edge burning).
    pub active_response: bool,
    /// Defender correlates alerts across layers (success penalty).
    pub alert_correlation: bool,
    /// Exponent on path stealth in the planning objective
    /// (`success × stealth^stealth_weight`). `1.0` is the classic
    /// silent-compromise attacker and reproduces pre-knob numbers
    /// bit-identically; lower weights trade stealth for speed, and
    /// `0.0` ignores detection pressure entirely.
    pub stealth_weight: f64,
    /// Extra detect probability added to every attempted edge by the
    /// defender's monitoring spend. The planner does not see this —
    /// monitoring is the defender's private sensor budget.
    pub monitor_boost: f64,
}

impl AttackConfig {
    /// A budgeted attacker against a defender without runtime response.
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            active_response: false,
            alert_correlation: false,
            stealth_weight: 1.0,
            monitor_boost: 0.0,
        }
    }
}

/// Outcome of one Monte-Carlo attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackRun {
    /// Did the attacker reach [`AttackGraph::GOAL`]?
    pub reached_goal: bool,
    /// Edge attempts consumed.
    pub steps_attempted: usize,
    /// Alerts raised against the attacker.
    pub alerts: usize,
    /// Edges burned by the active response.
    pub burned_edges: usize,
}

/// What happened on one attempted attack step — the feedback surface
/// an external defender (the `autosec-autodefense` duel loop) observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Edge index attempted.
    pub edge: usize,
    /// Architecture layer of the attempted edge.
    pub layer: ArchLayer,
    /// Did the capability transfer?
    pub succeeded: bool,
    /// Did a detector fire? Undetected steps are invisible to any
    /// runtime defender.
    pub detected: bool,
    /// Did the attacker's own active-response model burn the edge?
    pub burned: bool,
}

/// Mid-run attacker state, steppable from the outside.
///
/// [`adaptive_trial`] and [`replay_trial`] are thin loops over this
/// type; a self-play driver can instead interleave its own defender
/// turns between [`AttackerState::attempt`] calls — hardening the
/// posture, banning edges ([`AttackerState::ban_edge`], the credential
/// rotation / isolation surface), or raising
/// [`AttackConfig::monitor_boost`] — without perturbing the RNG
/// stream: an attempt always draws exactly two `chance` samples.
pub struct AttackerState {
    owned: CapabilitySet,
    banned: EdgeSet,
    engine: ResponseEngine,
    alerts: usize,
    steps: usize,
    burned: usize,
}

impl AttackerState {
    /// A fresh run: external foothold only, nothing banned.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            owned: CapabilitySet::start(),
            banned: EdgeSet::empty(),
            engine: ResponseEngine::new(),
            alerts: 0,
            steps: 0,
            burned: 0,
        }
    }

    /// Capabilities currently held.
    pub fn owned(&self) -> CapabilitySet {
        self.owned
    }

    /// Edges banned so far (burned by response or rotated away).
    pub fn banned(&self) -> EdgeSet {
        self.banned
    }

    /// Alerts raised against this run so far.
    pub fn alerts(&self) -> usize {
        self.alerts
    }

    /// Edge attempts consumed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Whether [`AttackGraph::GOAL`] has been reached.
    pub fn reached_goal(&self) -> bool {
        self.owned.contains(AttackGraph::GOAL)
    }

    /// Bans edge `idx` for the rest of the run — the defender-facing
    /// burn surface (credential rotation retires the tool; isolation
    /// retires the foothold). Returns whether the ban was new.
    pub fn ban_edge(&mut self, idx: usize) -> bool {
        if self.banned.contains(idx) {
            return false;
        }
        self.banned.insert(idx);
        self.burned += 1;
        true
    }

    /// The attacker's next plan under current holdings, bans and
    /// remaining budget. `None` means it walks away.
    pub fn plan(
        &self,
        graph: &AttackGraph,
        posture: &DefensePosture,
        cfg: &AttackConfig,
    ) -> Option<PlannedPath> {
        best_path_weighted(
            graph,
            posture,
            cfg.budget.saturating_sub(self.steps),
            &self.owned,
            &self.banned,
            cfg.stealth_weight,
        )
    }

    /// Attempts edge `idx`, drawing success and detection in a fixed
    /// order so trial streams stay aligned across attacker variants.
    pub fn attempt(
        &mut self,
        graph: &AttackGraph,
        posture: &DefensePosture,
        cfg: &AttackConfig,
        idx: usize,
        rng: &mut SimRng,
    ) -> StepReport {
        let edge = &graph.edges()[idx];
        let p = edge.prob(posture);
        let mut success_p = p.success;
        if cfg.alert_correlation && self.alerts >= CORRELATION_THRESHOLD {
            success_p *= CORRELATED_PENALTY;
        }
        let succeeded = rng.chance(success_p);
        let detected = rng.chance((p.detect + cfg.monitor_boost).min(1.0));
        self.steps += 1;
        let mut burned = false;
        if detected {
            self.alerts += 1;
            if cfg.active_response {
                let alert = Alert {
                    detector: detector_for(edge.layer),
                    subject: idx as u32,
                    at: SimTime::ZERO + SimDuration::from_ms(self.steps as u64 * 10),
                    detail: edge.name.to_string(),
                };
                let response = self.engine.handle(&alert);
                if response.action.cost() >= ResponseAction::IsolateNode.cost()
                    && !self.banned.contains(idx)
                {
                    self.banned.insert(idx);
                    self.burned += 1;
                    burned = true;
                }
            }
        }
        if succeeded {
            self.owned.insert(edge.to);
        }
        StepReport {
            edge: idx,
            layer: edge.layer,
            succeeded,
            detected,
            burned,
        }
    }

    /// Closes the run into its summary outcome.
    pub fn finish(self) -> AttackRun {
        AttackRun {
            reached_goal: self.owned.contains(AttackGraph::GOAL),
            steps_attempted: self.steps,
            alerts: self.alerts,
            burned_edges: self.burned,
        }
    }
}

/// Which IDS detector covers attacks at a layer — drives the response
/// engine's playbook choice (and thereby which detections burn edges).
pub fn detector_for(layer: ArchLayer) -> &'static str {
    match layer {
        // UWB ranging integrity alarms look like timing/interval
        // anomalies: rekey-class response, no isolation.
        ArchLayer::Physical => "interval",
        // Analog fingerprinting points at a specific node: isolate it.
        ArchLayer::Network => "fingerprint",
        // Zero-trust placement rejections are specification violations.
        ArchLayer::SoftwarePlatform => "specification",
        // Backend rate/exfiltration anomalies are frequency alarms.
        ArchLayer::Data => "frequency",
        // SoS and V2X misbehaviour reports only notify the SOC today.
        ArchLayer::SystemOfSystems => "sos-monitor",
        ArchLayer::Collaboration => "misbehavior",
    }
}

/// One adaptive attack: plan, attempt the first planned step, re-plan.
///
/// Draws exactly two `chance` samples per attempted step, so the run is
/// a pure function of `(graph, posture, cfg, rng stream)`.
pub fn adaptive_trial(
    graph: &AttackGraph,
    posture: &DefensePosture,
    cfg: &AttackConfig,
    rng: &mut SimRng,
) -> AttackRun {
    let mut st = AttackerState::new();
    while st.steps() < cfg.budget && !st.reached_goal() {
        let Some(plan) = st.plan(graph, posture, cfg) else {
            break;
        };
        let Some(&idx) = plan.edges.first() else {
            break;
        };
        st.attempt(graph, posture, cfg, idx, rng);
    }
    st.finish()
}

/// One static replay attack: the fixed campaign order, no planning.
///
/// Walks [`AttackGraph::edges`] in insertion order (campaign, kill
/// chain, cascades), attempting every edge whose source capability is
/// held and whose target is still missing; repeats the sweep while it
/// keeps making progress and budget remains.
pub fn replay_trial(
    graph: &AttackGraph,
    posture: &DefensePosture,
    cfg: &AttackConfig,
    rng: &mut SimRng,
) -> AttackRun {
    let mut st = AttackerState::new();
    loop {
        let owned_before = st.owned();
        for idx in 0..graph.len() {
            if st.steps() >= cfg.budget || st.reached_goal() {
                break;
            }
            let edge = &graph.edges()[idx];
            if !st.owned().contains(edge.from)
                || st.owned().contains(edge.to)
                || st.banned().contains(idx)
            {
                continue;
            }
            st.attempt(graph, posture, cfg, idx, rng);
        }
        if st.steps() >= cfg.budget || st.reached_goal() || st.owned() == owned_before {
            break;
        }
    }
    st.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AttackEdge, Capability, EdgeSource, ProbPoint};

    fn edge(
        name: &'static str,
        from: Capability,
        to: Capability,
        layer: ArchLayer,
        success: f64,
        detect: f64,
    ) -> AttackEdge {
        AttackEdge {
            name,
            from,
            to,
            layer,
            stride: autosec_sim::Stride::Tampering,
            source: EdgeSource::Scenario(name),
            undefended: ProbPoint { success, detect },
            defended: ProbPoint { success, detect },
        }
    }

    /// A sure silent two-hop route plus a sure loud direct route that
    /// is always detected by the Network fingerprint detector.
    fn test_graph() -> AttackGraph {
        let mut g = AttackGraph::new();
        g.add_edge(edge(
            "loud-direct",
            Capability::External,
            Capability::SafetyImpact,
            ArchLayer::Network,
            0.0,
            1.0,
        ));
        g.add_edge(edge(
            "hop-1",
            Capability::External,
            Capability::PlatformFoothold,
            ArchLayer::SoftwarePlatform,
            1.0,
            0.0,
        ));
        g.add_edge(edge(
            "hop-2",
            Capability::PlatformFoothold,
            Capability::SafetyImpact,
            ArchLayer::SystemOfSystems,
            1.0,
            0.0,
        ));
        g
    }

    #[test]
    fn adaptive_reaches_a_sure_goal_silently() {
        let g = test_graph();
        let run = adaptive_trial(
            &g,
            &DefensePosture::none(),
            &AttackConfig::new(5),
            &mut SimRng::seed(1).fork("t"),
        );
        assert!(run.reached_goal);
        assert_eq!(run.steps_attempted, 2);
        assert_eq!(run.alerts, 0);
    }

    #[test]
    fn replay_grinds_through_the_loud_edge_first() {
        let g = test_graph();
        let run = replay_trial(
            &g,
            &DefensePosture::none(),
            &AttackConfig::new(5),
            &mut SimRng::seed(1).fork("t"),
        );
        assert!(run.reached_goal, "eventually gets there");
        // The replay order hits the always-detected edge first.
        assert!(run.alerts >= 1);
        assert!(run.steps_attempted > 2);
    }

    #[test]
    fn hopeless_budget_is_not_even_attempted() {
        // The silent route needs two steps; with budget 1 the planner
        // sees no viable path and the attacker walks away silently.
        let g = test_graph();
        let run = adaptive_trial(
            &g,
            &DefensePosture::none(),
            &AttackConfig::new(1),
            &mut SimRng::seed(2).fork("t"),
        );
        assert!(!run.reached_goal);
        assert_eq!(run.steps_attempted, 0);
        assert_eq!(run.alerts, 0);
    }

    #[test]
    fn active_response_burns_fingerprinted_edges() {
        // Only the loud Network edge exists: with active response its
        // first detection isolates it and the attacker is out of moves.
        let mut g = AttackGraph::new();
        g.add_edge(edge(
            "loud-direct",
            Capability::External,
            Capability::SafetyImpact,
            ArchLayer::Network,
            0.5,
            1.0,
        ));
        let cfg = AttackConfig {
            active_response: true,
            ..AttackConfig::new(10)
        };
        // Try a few streams: whatever the success draws do, the run
        // must stop after one attempt because the edge burns.
        for seed in 0..5 {
            let run = adaptive_trial(
                &g,
                &DefensePosture::none(),
                &cfg,
                &mut SimRng::seed(seed).fork("t"),
            );
            if !run.reached_goal {
                assert_eq!(run.steps_attempted, 1, "seed {seed}");
                assert_eq!(run.burned_edges, 1, "seed {seed}");
            }
        }
    }

    #[test]
    fn correlation_halves_late_step_success() {
        // Two loud no-op steps raise alerts; the third step's success
        // would be sure without correlation.
        let mut g = AttackGraph::new();
        g.add_edge(edge(
            "noise-1",
            Capability::External,
            Capability::VehicleAccess,
            ArchLayer::Physical,
            1.0,
            1.0,
        ));
        g.add_edge(edge(
            "noise-2",
            Capability::VehicleAccess,
            Capability::BusAccess,
            ArchLayer::Physical,
            1.0,
            1.0,
        ));
        g.add_edge(edge(
            "payload",
            Capability::BusAccess,
            Capability::SafetyImpact,
            ArchLayer::Network,
            1.0,
            0.0,
        ));
        let cfg = AttackConfig {
            alert_correlation: true,
            ..AttackConfig::new(6)
        };
        let mut successes = 0;
        let trials = 400;
        for i in 0..trials {
            let run = adaptive_trial(
                &g,
                &DefensePosture::none(),
                &cfg,
                &mut SimRng::seed(7).fork_idx(i),
            );
            successes += usize::from(run.reached_goal);
        }
        let rate = successes as f64 / trials as f64;
        // The payload step runs at 0.5 after two alerts; with up to 4
        // budget left the attacker can retry, so the rate sits between
        // the one-shot 0.5 and certainty, but far from 1.0-without-
        // correlation would be impossible to distinguish — instead
        // check it is clearly depressed below 1.
        assert!(rate < 0.99, "correlation must bite: rate {rate}");
        assert!(rate > 0.5, "retries still help: rate {rate}");
    }

    #[test]
    fn trials_are_deterministic_per_stream() {
        let g = test_graph();
        let cfg = AttackConfig {
            active_response: true,
            alert_correlation: true,
            ..AttackConfig::new(8)
        };
        let posture = DefensePosture::none();
        for i in 0..20 {
            let a = adaptive_trial(&g, &posture, &cfg, &mut SimRng::seed(3).fork_idx(i));
            let b = adaptive_trial(&g, &posture, &cfg, &mut SimRng::seed(3).fork_idx(i));
            assert_eq!(a, b);
            let ra = replay_trial(&g, &posture, &cfg, &mut SimRng::seed(3).fork_idx(i));
            let rb = replay_trial(&g, &posture, &cfg, &mut SimRng::seed(3).fork_idx(i));
            assert_eq!(ra, rb);
        }
    }
}
