//! Graph calibration: measuring edge probabilities from the executable
//! models.
//!
//! Nothing in [`calibrated_graph`] types a probability by hand. Every
//! edge's `(undefended, defended)` pair is a Monte-Carlo estimate from
//! running the model behind it:
//!
//! * **Scenario edges** — each
//!   [`ScenarioStep`](autosec_core::scenario::ScenarioStep) from
//!   [`scenario_registry`] is executed `trials` times under
//!   [`DefensePosture::none`] and [`DefensePosture::full`]; the
//!   success/detection rates become the edge's two probability points.
//! * **Kill-chain edges** — the Fig. 8
//!   [`Attacker`](autosec_data::killchain::Attacker) runs end-to-end
//!   against a fresh [`TelemetryBackend`] per trial (undefended vs.
//!   hardened); each stage's edge gets its success rate *conditional on
//!   the previous stage*, and its detection rate.
//! * **Cascade edges** — [`cascade_trial`] propagates a compromise from
//!   the edge's entry node through the Fig. 9 reference graph; the
//!   safety-reach rate is the success probability, with the defended
//!   side measured on a decoupled graph
//!   ([`with_coupling_scale`] at [`DECOUPLING_SCALE`]).
//!
//! All loops run through [`par_trials`], so a calibrated graph is
//! bit-identical for every job count at a fixed seed.

use autosec_core::campaign::DefensePosture;
use autosec_core::engine::measure_step;
use autosec_core::scenario::{scenario_registry, ScenarioStep};
use autosec_data::killchain::{Attacker, KillChainReport, KillChainStage};
use autosec_data::service::{DefenseConfig, TelemetryBackend};
use autosec_runner::par_trials;
use autosec_sim::{ArchLayer, SimRng, Stride};
use autosec_sos::cascade::{cascade_trial, with_coupling_scale};
use autosec_sos::model::SosGraph;
use autosec_sos::reference::maas_reference;

use crate::graph::{AttackEdge, AttackGraph, Capability, EdgeSource, ProbPoint};

/// Coupling multiplier for the defended (decoupled) cascade model —
/// the §VI-B "decoupling" defense as already used by E10.
pub const DECOUPLING_SCALE: f64 = 0.5;

/// Backend size for kill-chain calibration runs (matches the campaign
/// step's backend).
const BACKEND_RECORDS: usize = 500;

/// How a calibration run is sized and parallelized.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// Monte-Carlo trials per edge per posture side.
    pub trials: usize,
    /// Worker threads (forwarded to [`par_trials`]; never changes the
    /// estimates).
    pub jobs: usize,
}

impl CalibrationConfig {
    /// A config with `trials` per estimate.
    pub fn new(trials: usize, jobs: usize) -> Self {
        Self {
            trials: trials.max(1),
            jobs: jobs.max(1),
        }
    }
}

/// Where each scenario step slots into the capability graph.
///
/// The step name is the lookup key; the pair is `(from, to)`. This is
/// topology (which capability unlocks which), not probability — the
/// probabilities are measured.
fn scenario_topology(name: &str) -> (Capability, Capability) {
    match name {
        "pkes-relay" => (Capability::External, Capability::VehicleAccess),
        "distance-enlargement" => (Capability::External, Capability::SensorControl),
        "can-masquerade" => (Capability::VehicleAccess, Capability::BusAccess),
        "can-flood-dos" => (Capability::BusAccess, Capability::BusDisruption),
        "pdu-forgery" => (Capability::BusAccess, Capability::ActuationControl),
        "rogue-software-placement" => (Capability::VehicleAccess, Capability::PlatformFoothold),
        "telemetry-kill-chain" => (Capability::External, Capability::FleetBackend),
        "breach-cascade" => (Capability::PlatformFoothold, Capability::SafetyImpact),
        "v2x-ghost-object" => (Capability::External, Capability::FusedViewWrite),
        other => panic!("scenario step {other:?} has no graph placement"),
    }
}

/// The kill-chain stages as graph hops, in chain order. The chain is
/// reconnaissance-to-exfiltration against the telemetry backend, so
/// every stage is information disclosure except the credential theft,
/// which elevates the attacker to the backend's own authority.
fn killchain_topology(stage: KillChainStage) -> (&'static str, Capability, Capability, Stride) {
    match stage {
        KillChainStage::TrafficAnalysis => (
            "kc-traffic-analysis",
            Capability::External,
            Capability::ApiRecon,
            Stride::InformationDisclosure,
        ),
        KillChainStage::DirectoryEnumeration => (
            "kc-directory-enumeration",
            Capability::ApiRecon,
            Capability::RouteMap,
            Stride::InformationDisclosure,
        ),
        KillChainStage::SupplyChainIdentification => (
            "kc-supply-chain-id",
            Capability::RouteMap,
            Capability::FrameworkKnown,
            Stride::InformationDisclosure,
        ),
        KillChainStage::HeapDump => (
            "kc-heap-dump",
            Capability::FrameworkKnown,
            Capability::HeapDump,
            Stride::InformationDisclosure,
        ),
        KillChainStage::KeyExtraction => (
            "kc-key-extraction",
            Capability::HeapDump,
            Capability::KeyMaterial,
            Stride::ElevationOfPrivilege,
        ),
        KillChainStage::DataExtraction => (
            "kc-data-extraction",
            Capability::KeyMaterial,
            Capability::FleetBackend,
            Stride::InformationDisclosure,
        ),
    }
}

/// The cascade edges: which capability pivots into the SoS graph at
/// which entry node, and which STRIDE class the pivot realises.
const CASCADE_EDGES: [(&str, Capability, &str, Stride); 5] = [
    (
        "cascade-backend",
        Capability::FleetBackend,
        "cloud-backend",
        Stride::DenialOfService,
    ),
    (
        "cascade-platform",
        Capability::PlatformFoothold,
        "vehicle-os",
        Stride::ElevationOfPrivilege,
    ),
    (
        "cascade-fused-view",
        Capability::FusedViewWrite,
        "self-driving-stack",
        Stride::Tampering,
    ),
    (
        "cascade-sensor",
        Capability::SensorControl,
        "self-driving-stack",
        Stride::Tampering,
    ),
    (
        "cascade-actuation",
        Capability::ActuationControl,
        "act",
        Stride::Tampering,
    ),
];

/// Measures one scenario step's success/detection rates under one
/// posture.
///
/// A thin adapter over the shared calibration primitive
/// [`measure_step`] — the same machinery behind core's
/// [`StepOutcomeTable`](autosec_core::engine::StepOutcomeTable) — so
/// attack-graph edges and fleet outcome tables are estimates from the
/// identical trial scheme.
pub fn scenario_point(
    step: &dyn ScenarioStep,
    posture: &DefensePosture,
    base: &SimRng,
    cfg: &CalibrationConfig,
) -> ProbPoint {
    let stats = measure_step(step, posture, base, cfg.trials, cfg.jobs);
    ProbPoint {
        success: stats.success,
        detect: stats.detect,
    }
}

/// Runs `cfg.trials` full kill chains and distills per-stage
/// conditional success and detection rates, in [`KillChainStage::ALL`]
/// order.
pub fn killchain_points(
    defenses: DefenseConfig,
    base: &SimRng,
    cfg: &CalibrationConfig,
) -> Vec<ProbPoint> {
    let reports: Vec<KillChainReport> =
        par_trials(cfg.jobs, cfg.trials, base, move |_, mut rng| {
            let backend = TelemetryBackend::build(BACKEND_RECORDS, defenses, &mut rng);
            Attacker::new().execute(&backend, &mut rng)
        });
    let mut points = Vec::with_capacity(KillChainStage::ALL.len());
    let mut prev_reached = reports.len();
    for stage in KillChainStage::ALL {
        let reached = reports.iter().filter(|r| r.reached(stage)).count();
        let detected = reports
            .iter()
            .filter(|r| r.detected_at == Some(stage))
            .count();
        points.push(ProbPoint {
            // Conditional on the previous stage: an unreachable stage
            // (the chain always blocks earlier) gets 0.
            success: if prev_reached == 0 {
                0.0
            } else {
                reached as f64 / prev_reached as f64
            },
            detect: detected as f64 / reports.len() as f64,
        });
        prev_reached = reached;
    }
    points
}

/// Measures the safety-reach probability of a cascade from `entry`.
pub fn cascade_point(
    graph: &SosGraph,
    entry: &str,
    base: &SimRng,
    cfg: &CalibrationConfig,
) -> ProbPoint {
    let id = graph
        .find(entry)
        .unwrap_or_else(|| panic!("cascade entry {entry:?} not in the reference graph"));
    let safety: Vec<_> = ["braking", "steering", "act"]
        .iter()
        .filter_map(|s| graph.find(s))
        .collect();
    let hits = par_trials(cfg.jobs, cfg.trials, base, |_, mut rng| {
        let mask = cascade_trial(graph, id, &mut rng);
        safety.iter().any(|s| mask[s.0])
    });
    ProbPoint {
        success: hits.iter().filter(|&&h| h).count() as f64 / cfg.trials as f64,
        // The cascade model has no detection channel: a SoS pivot is
        // silent (§VI-B's monitoring gap).
        detect: 0.0,
    }
}

/// Clamps the defended success to never exceed the undefended one, so
/// turning a defense on is always weakly helpful to the defender. Both
/// values are Monte-Carlo estimates of quantities where this holds by
/// construction, so the clamp only ever absorbs estimation noise.
fn clamp_defended(undefended: ProbPoint, defended: ProbPoint) -> ProbPoint {
    ProbPoint {
        success: defended.success.min(undefended.success),
        detect: defended.detect,
    }
}

/// Builds the full calibrated attack graph.
///
/// Edge order — which is also the replay attacker's sweep order — is
/// the nine scenario steps in campaign order, then the five cascade
/// pivots (the campaign's Fig. 9 consequences), then the six staged
/// kill-chain hops.
/// Deterministic in `(base, cfg.trials)`; `cfg.jobs` only changes
/// wall-clock time.
pub fn calibrated_graph(cfg: &CalibrationConfig, base: &SimRng) -> AttackGraph {
    let mut g = AttackGraph::new();

    let none = DefensePosture::none();
    let full = DefensePosture::full();
    for step in scenario_registry() {
        let (from, to) = scenario_topology(step.name());
        let undefended = scenario_point(
            step.as_ref(),
            &none,
            &base.fork(&format!("calib/{}/undef", step.name())),
            cfg,
        );
        let defended = scenario_point(
            step.as_ref(),
            &full,
            &base.fork(&format!("calib/{}/def", step.name())),
            cfg,
        );
        g.add_edge(AttackEdge {
            name: step.name(),
            from,
            to,
            layer: step.layer(),
            stride: step.stride(),
            source: EdgeSource::Scenario(step.name()),
            undefended,
            defended: clamp_defended(undefended, defended),
        });
    }

    let coupled = maas_reference();
    let decoupled = with_coupling_scale(&coupled, DECOUPLING_SCALE);
    for (name, from, entry, stride) in CASCADE_EDGES {
        let undefended = cascade_point(
            &coupled,
            entry,
            &base.fork(&format!("calib/{name}/undef")),
            cfg,
        );
        let defended = cascade_point(
            &decoupled,
            entry,
            &base.fork(&format!("calib/{name}/def")),
            cfg,
        );
        g.add_edge(AttackEdge {
            name,
            from,
            to: Capability::SafetyImpact,
            layer: ArchLayer::SystemOfSystems,
            stride,
            source: EdgeSource::Cascade(entry),
            undefended,
            defended: clamp_defended(undefended, defended),
        });
    }

    let undef_stages = killchain_points(
        DefenseConfig::none(),
        &base.fork("calib/killchain/undef"),
        cfg,
    );
    let def_stages = killchain_points(
        DefenseConfig::hardened(),
        &base.fork("calib/killchain/def"),
        cfg,
    );
    for (i, stage) in KillChainStage::ALL.into_iter().enumerate() {
        let (name, from, to, stride) = killchain_topology(stage);
        g.add_edge(AttackEdge {
            name,
            from,
            to,
            layer: ArchLayer::Data,
            stride,
            source: EdgeSource::KillChain(stage),
            undefended: undef_stages[i],
            defended: clamp_defended(undef_stages[i], def_stages[i]),
        });
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CalibrationConfig {
        CalibrationConfig::new(30, 1)
    }

    #[test]
    fn graph_has_all_twenty_edges() {
        let g = calibrated_graph(&small(), &SimRng::seed(1));
        assert_eq!(g.len(), 9 + 6 + 5);
    }

    #[test]
    fn calibration_is_deterministic_and_jobs_invariant() {
        let cfg1 = CalibrationConfig::new(24, 1);
        let cfg4 = CalibrationConfig::new(24, 4);
        let a = calibrated_graph(&cfg1, &SimRng::seed(9));
        let b = calibrated_graph(&cfg4, &SimRng::seed(9));
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea.undefended, eb.undefended, "{}", ea.name);
            assert_eq!(ea.defended, eb.defended, "{}", ea.name);
        }
    }

    #[test]
    fn defended_success_never_exceeds_undefended() {
        let g = calibrated_graph(&small(), &SimRng::seed(2));
        for e in g.edges() {
            assert!(
                e.defended.success <= e.undefended.success + 1e-12,
                "{}: defended {} > undefended {}",
                e.name,
                e.defended.success,
                e.undefended.success
            );
        }
    }

    #[test]
    fn killchain_hardened_blocks_the_heap_dump() {
        let pts = killchain_points(DefenseConfig::hardened(), &SimRng::seed(3), &small());
        // Stages: traffic, dir-enum, supply-chain, heap-dump, ...
        assert_eq!(pts[0].success, 1.0);
        assert_eq!(pts[3].success, 0.0, "debug endpoints disabled");
        assert_eq!(pts[1].detect, 1.0, "rate limiting flags the scan");
    }

    #[test]
    fn actuation_cascade_is_certain() {
        // Entering the cascade at a safety function is already the goal,
        // so this edge calibrates to 1.0 by construction.
        let g = calibrated_graph(&small(), &SimRng::seed(4));
        let e = g
            .edge_for(&EdgeSource::Cascade("act"))
            .expect("actuation edge");
        assert_eq!(e.undefended.success, 1.0);
        assert_eq!(e.defended.success, 1.0);
    }
}
