//! # autosec-adversary
//!
//! Executable threat modeling for the layered workbench: a cross-layer
//! **attack graph** whose edges are calibrated from the repo's own
//! models, an **adaptive attacker** that plans and re-plans best paths
//! through it, and a **defender optimizer** that allocates a bounded
//! defense budget against that attacker.
//!
//! The paper's §VIII campaign replays a fixed attack sequence; this
//! crate asks the two questions the replay cannot: *what is the best
//! path an adaptive attacker would take?* ([`planner`], [`attacker`])
//! and *where should the next defense dollar go?* ([`defender`]).
//!
//! Pipeline:
//!
//! 1. [`calibrate::calibrated_graph`] runs the
//!    [`ScenarioStep`](autosec_core::scenario::ScenarioStep) registry,
//!    the Fig. 8 kill-chain stages, and the Fig. 9 cascade model under
//!    `DefensePosture::none()`/`full()` to measure every edge's
//!    success/detection probabilities — the graph is derived from code,
//!    never hand-typed.
//! 2. [`planner::best_path`] finds the budgeted `success × stealth`
//!    optimum; [`attacker::adaptive_trial`] executes it Monte-Carlo
//!    style with re-planning, against [`attacker::replay_trial`] as the
//!    static baseline.
//! 3. [`defender::greedy_frontier`] allocates K of 8 defense knobs
//!    (six layers + active response + alert correlation) to minimize
//!    adaptive-attacker success, compared against the fixed bottom-up
//!    ordering of E1.
//!
//! Everything runs on [`SimRng`](autosec_sim::SimRng) substreams via
//! [`par_trials`](autosec_runner::par_trials): results are
//! bit-identical for every `--jobs` value at a fixed seed.

pub mod attacker;
pub mod calibrate;
pub mod defender;
pub mod graph;
pub mod planner;

pub use attacker::{
    adaptive_trial, detector_for, replay_trial, AttackConfig, AttackRun, AttackerState, StepReport,
};
pub use calibrate::{calibrated_graph, CalibrationConfig};
pub use defender::{
    bottom_up_curve, evaluate, evaluate_with, greedy_frontier, resolve_knobs, Allocation,
    DefenseKnob, EvalPoint,
};
pub use graph::{
    AttackEdge, AttackGraph, Capability, CapabilitySet, EdgeSet, EdgeSource, ProbPoint,
};
pub use planner::{best_path, best_path_weighted, PlannedPath};
