//! The cross-layer attack graph: capabilities as nodes, calibrated
//! attack steps as edges.
//!
//! Nodes are attacker *capabilities* (§VIII: a foothold at one layer is
//! the entry ticket to the next), each tagged with the [`ArchLayer`]
//! where it lives. Edges are attack steps whose success/detection
//! probabilities come from [`crate::calibrate`] — every edge is backed
//! by one of the executable models already in the workbench
//! ([`ScenarioStep`](autosec_core::scenario::ScenarioStep)s, the Fig. 8
//! kill-chain stages, or the Fig. 9 cascade model), never a hand-typed
//! constant.
//!
//! The enum order of [`Capability`] is a topological order of the
//! graph: every edge goes from a lower index to a strictly higher one,
//! which the planner's single-pass DP relies on.

use autosec_core::campaign::DefensePosture;
use autosec_data::killchain::KillChainStage;
use autosec_sim::{ArchLayer, Stride};

/// An attacker capability — one node of the attack graph.
///
/// Declaration order is topological (edges only go "downward"), and
/// `ALL` enumerates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    /// The starting point: network reach, no foothold anywhere.
    External,
    /// Fleet API host identified (kill-chain stage 1).
    ApiRecon,
    /// Backend directory structure mapped (stage 2).
    RouteMap,
    /// Backend framework fingerprinted (stage 3).
    FrameworkKnown,
    /// Backend heap dump in hand (stage 4).
    HeapDump,
    /// Cloud credentials extracted (stage 5).
    KeyMaterial,
    /// Full fleet-backend compromise: bulk telemetry access (stage 6).
    FleetBackend,
    /// Physical access to one vehicle (doors open, OBD reachable).
    VehicleAccess,
    /// Control over what the vehicle's ranging sensors perceive.
    SensorControl,
    /// Write access to the in-vehicle bus.
    BusAccess,
    /// The bus is disrupted (DoS) — degraded, not controlled.
    BusDisruption,
    /// Forged actuation commands accepted by ECUs.
    ActuationControl,
    /// Code execution on the SDV compute platform.
    PlatformFoothold,
    /// Ghost objects accepted into the fused V2X world view.
    FusedViewWrite,
    /// The goal: a safety function (braking/steering/act) compromised.
    SafetyImpact,
}

impl Capability {
    /// Every capability in topological order.
    pub const ALL: [Capability; 15] = [
        Capability::External,
        Capability::ApiRecon,
        Capability::RouteMap,
        Capability::FrameworkKnown,
        Capability::HeapDump,
        Capability::KeyMaterial,
        Capability::FleetBackend,
        Capability::VehicleAccess,
        Capability::SensorControl,
        Capability::BusAccess,
        Capability::BusDisruption,
        Capability::ActuationControl,
        Capability::PlatformFoothold,
        Capability::FusedViewWrite,
        Capability::SafetyImpact,
    ];

    /// Dense index (position in [`Capability::ALL`]).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL")
    }

    /// The layer this capability lives at.
    pub fn layer(self) -> ArchLayer {
        match self {
            Capability::External => ArchLayer::SystemOfSystems,
            Capability::ApiRecon
            | Capability::RouteMap
            | Capability::FrameworkKnown
            | Capability::HeapDump
            | Capability::KeyMaterial
            | Capability::FleetBackend => ArchLayer::Data,
            Capability::VehicleAccess | Capability::SensorControl => ArchLayer::Physical,
            Capability::BusAccess | Capability::BusDisruption | Capability::ActuationControl => {
                ArchLayer::Network
            }
            Capability::PlatformFoothold => ArchLayer::SoftwarePlatform,
            Capability::FusedViewWrite => ArchLayer::Collaboration,
            Capability::SafetyImpact => ArchLayer::SystemOfSystems,
        }
    }
}

impl std::fmt::Display for Capability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Capability::External => "external",
            Capability::ApiRecon => "api-recon",
            Capability::RouteMap => "route-map",
            Capability::FrameworkKnown => "framework-known",
            Capability::HeapDump => "heap-dump",
            Capability::KeyMaterial => "key-material",
            Capability::FleetBackend => "fleet-backend",
            Capability::VehicleAccess => "vehicle-access",
            Capability::SensorControl => "sensor-control",
            Capability::BusAccess => "bus-access",
            Capability::BusDisruption => "bus-disruption",
            Capability::ActuationControl => "actuation-control",
            Capability::PlatformFoothold => "platform-foothold",
            Capability::FusedViewWrite => "fused-view-write",
            Capability::SafetyImpact => "safety-impact",
        };
        f.write_str(s)
    }
}

/// A small capability set (bitmask over [`Capability::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CapabilitySet(u16);

impl CapabilitySet {
    /// The empty set.
    pub fn empty() -> Self {
        Self(0)
    }

    /// Just the attacker's starting capability.
    pub fn start() -> Self {
        let mut s = Self::empty();
        s.insert(Capability::External);
        s
    }

    /// Adds a capability.
    pub fn insert(&mut self, c: Capability) {
        self.0 |= 1 << c.index();
    }

    /// Membership test.
    pub fn contains(&self, c: Capability) -> bool {
        self.0 & (1 << c.index()) != 0
    }

    /// Number of capabilities held.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no capability is held.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// A small edge-index set (bitmask over `AttackGraph::edges()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeSet(u32);

impl EdgeSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self(0)
    }

    /// Adds an edge index.
    pub fn insert(&mut self, idx: usize) {
        assert!(idx < 32, "edge index out of range");
        self.0 |= 1 << idx;
    }

    /// Membership test.
    pub fn contains(&self, idx: usize) -> bool {
        idx < 32 && self.0 & (1 << idx) != 0
    }

    /// Number of edges in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no edge is banned.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// Which executable model an edge's probabilities were calibrated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSource {
    /// A [`ScenarioStep`](autosec_core::scenario::ScenarioStep) from
    /// the campaign registry, by step name.
    Scenario(&'static str),
    /// One Fig. 8 kill-chain stage (conditional on its predecessor).
    KillChain(KillChainStage),
    /// A Fig. 9 cascade from the named entry node to a safety function.
    Cascade(&'static str),
}

/// A success/detection probability pair for one posture side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbPoint {
    /// Probability the step grants the target capability.
    pub success: f64,
    /// Probability the step raises an alert (independent of success).
    pub detect: f64,
}

impl ProbPoint {
    /// A certain, silent step.
    pub fn sure() -> Self {
        Self {
            success: 1.0,
            detect: 0.0,
        }
    }
}

/// One attack step: an edge of the graph.
#[derive(Debug, Clone)]
pub struct AttackEdge {
    /// Unique edge name (artifact/debug identifier).
    pub name: &'static str,
    /// Required capability.
    pub from: Capability,
    /// Granted capability.
    pub to: Capability,
    /// The layer whose defense toggle governs this edge.
    pub layer: ArchLayer,
    /// The STRIDE threat class this edge realises (drives the
    /// STRIDE×layer coverage matrix in `autosec-scengen`).
    pub stride: Stride,
    /// The model the probabilities were measured from.
    pub source: EdgeSource,
    /// Probabilities with `layer`'s defenses off.
    pub undefended: ProbPoint,
    /// Probabilities with `layer`'s defenses on (success clamped to
    /// never exceed the undefended one, so adding defenses is always
    /// weakly helpful).
    pub defended: ProbPoint,
}

impl AttackEdge {
    /// The probability pair in effect under `posture`.
    pub fn prob(&self, posture: &DefensePosture) -> ProbPoint {
        if posture.enabled(self.layer) {
            self.defended
        } else {
            self.undefended
        }
    }
}

/// The calibrated attack graph.
#[derive(Debug, Clone, Default)]
pub struct AttackGraph {
    edges: Vec<AttackEdge>,
}

impl AttackGraph {
    /// The attacker's starting node.
    pub const START: Capability = Capability::External;
    /// The attacker's goal node.
    pub const GOAL: Capability = Capability::SafetyImpact;

    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an edge, enforcing topological direction and name
    /// uniqueness.
    ///
    /// # Panics
    ///
    /// Panics on a non-ascending edge (breaks the planner's DP) or a
    /// duplicate name.
    pub fn add_edge(&mut self, edge: AttackEdge) {
        assert!(
            edge.from.index() < edge.to.index(),
            "edge {} is not topologically ascending",
            edge.name
        );
        assert!(
            self.edges.iter().all(|e| e.name != edge.name),
            "duplicate edge name {:?}",
            edge.name
        );
        self.edges.push(edge);
    }

    /// All edges, in insertion (replay) order.
    pub fn edges(&self) -> &[AttackEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Edges requiring capability `from`, with their indices.
    pub fn edges_from(&self, from: Capability) -> impl Iterator<Item = (usize, &AttackEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.from == from)
    }

    /// The single edge calibrated from `source`, if present.
    pub fn edge_for(&self, source: &EdgeSource) -> Option<&AttackEdge> {
        self.edges.iter().find(|e| e.source == *source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_order_is_self_consistent() {
        for (i, c) in Capability::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn capability_sets_work() {
        let mut s = CapabilitySet::start();
        assert!(s.contains(Capability::External));
        assert!(!s.contains(Capability::SafetyImpact));
        s.insert(Capability::BusAccess);
        assert_eq!(s.len(), 2);
        assert!(!CapabilitySet::empty().contains(Capability::External));
        assert!(CapabilitySet::empty().is_empty());
    }

    #[test]
    fn edge_sets_work() {
        let mut s = EdgeSet::empty();
        s.insert(3);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
    }

    fn edge(name: &'static str, from: Capability, to: Capability) -> AttackEdge {
        AttackEdge {
            name,
            from,
            to,
            layer: ArchLayer::Physical,
            stride: Stride::Tampering,
            source: EdgeSource::Scenario(name),
            undefended: ProbPoint::sure(),
            defended: ProbPoint {
                success: 0.0,
                detect: 1.0,
            },
        }
    }

    #[test]
    fn posture_picks_the_probability_side() {
        let e = edge("x", Capability::External, Capability::VehicleAccess);
        let none = DefensePosture::none();
        let full = DefensePosture::full();
        assert_eq!(e.prob(&none).success, 1.0);
        assert_eq!(e.prob(&full).success, 0.0);
        assert_eq!(e.prob(&full).detect, 1.0);
    }

    #[test]
    #[should_panic(expected = "not topologically ascending")]
    fn descending_edge_rejected() {
        let mut g = AttackGraph::new();
        g.add_edge(edge("bad", Capability::SafetyImpact, Capability::External));
    }

    #[test]
    #[should_panic(expected = "duplicate edge name")]
    fn duplicate_edge_name_rejected() {
        let mut g = AttackGraph::new();
        g.add_edge(edge("x", Capability::External, Capability::VehicleAccess));
        g.add_edge(edge("x", Capability::External, Capability::SensorControl));
    }

    #[test]
    fn edges_from_filters_by_source_capability() {
        let mut g = AttackGraph::new();
        g.add_edge(edge("a", Capability::External, Capability::VehicleAccess));
        g.add_edge(edge("b", Capability::VehicleAccess, Capability::BusAccess));
        let from_ext: Vec<_> = g.edges_from(Capability::External).collect();
        assert_eq!(from_ext.len(), 1);
        assert_eq!(from_ext[0].1.name, "a");
    }
}
