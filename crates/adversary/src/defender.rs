//! Defense-budget optimization: greedy best-K allocation of defense
//! knobs against the adaptive attacker.
//!
//! The defender has eight toggles — the six per-layer
//! [`DefensePosture`] switches plus the two runtime knobs of
//! [`AttackConfig`] (active response, alert correlation). The greedy
//! optimizer adds one knob at a time, always picking the knob that
//! minimizes the adaptive attacker's Monte-Carlo success rate. All
//! candidate evaluations within one frontier share the same trial
//! streams (common random numbers), so comparisons are between runs of
//! identical randomness and never between different luck.

use autosec_core::campaign::DefensePosture;
use autosec_runner::par_trials;
use autosec_sim::{ArchLayer, SimRng};

use crate::attacker::{adaptive_trial, AttackConfig, AttackRun};
use crate::graph::AttackGraph;

/// One defender toggle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseKnob {
    /// Turn one layer's defenses on.
    Layer(ArchLayer),
    /// Feed alerts to the response engine (edge burning).
    ActiveResponse,
    /// Correlate alerts across layers (success penalty).
    AlertCorrelation,
}

impl DefenseKnob {
    /// Every knob, layers bottom-up first.
    pub const ALL: [DefenseKnob; 8] = [
        DefenseKnob::Layer(ArchLayer::Physical),
        DefenseKnob::Layer(ArchLayer::Network),
        DefenseKnob::Layer(ArchLayer::SoftwarePlatform),
        DefenseKnob::Layer(ArchLayer::Data),
        DefenseKnob::Layer(ArchLayer::SystemOfSystems),
        DefenseKnob::Layer(ArchLayer::Collaboration),
        DefenseKnob::ActiveResponse,
        DefenseKnob::AlertCorrelation,
    ];

    /// Stable display label (artifact column value).
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKnob::Layer(ArchLayer::Physical) => "layer:physical",
            DefenseKnob::Layer(ArchLayer::Network) => "layer:network",
            DefenseKnob::Layer(ArchLayer::SoftwarePlatform) => "layer:platform",
            DefenseKnob::Layer(ArchLayer::Data) => "layer:data",
            DefenseKnob::Layer(ArchLayer::SystemOfSystems) => "layer:sos",
            DefenseKnob::Layer(ArchLayer::Collaboration) => "layer:collaboration",
            DefenseKnob::ActiveResponse => "active-response",
            DefenseKnob::AlertCorrelation => "alert-correlation",
        }
    }
}

/// A knob set applied on top of a base attacker configuration.
///
/// Public so the self-play driver (`autosec-autodefense`) can replay
/// the exact posture/runtime split the optimizer evaluated.
pub fn resolve_knobs(knobs: &[DefenseKnob], base: &AttackConfig) -> (DefensePosture, AttackConfig) {
    let mut posture = DefensePosture::none();
    let mut cfg = *base;
    for k in knobs {
        match k {
            DefenseKnob::Layer(l) => posture.set(*l, true),
            DefenseKnob::ActiveResponse => cfg.active_response = true,
            DefenseKnob::AlertCorrelation => cfg.alert_correlation = true,
        }
    }
    (posture, cfg)
}

/// Aggregate attacker performance against one defense allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// Fraction of trials reaching the goal.
    pub success: f64,
    /// Mean alerts per trial.
    pub mean_alerts: f64,
}

/// Runs the adaptive attacker `trials` times against `knobs`.
///
/// Trial `i` always runs on `base.fork_idx(i)` regardless of the knob
/// set under evaluation — the common-random-numbers contract.
pub fn evaluate(
    graph: &AttackGraph,
    knobs: &[DefenseKnob],
    budget: usize,
    trials: usize,
    jobs: usize,
    base: &SimRng,
) -> EvalPoint {
    evaluate_with(graph, knobs, &AttackConfig::new(budget), trials, jobs, base)
}

/// [`evaluate`] against an arbitrary base attacker — e.g. one with a
/// non-default [`AttackConfig::stealth_weight`]. The knobs are applied
/// on top of `attack`; the trial streams follow the same
/// common-random-numbers contract.
pub fn evaluate_with(
    graph: &AttackGraph,
    knobs: &[DefenseKnob],
    attack: &AttackConfig,
    trials: usize,
    jobs: usize,
    base: &SimRng,
) -> EvalPoint {
    let (posture, cfg) = resolve_knobs(knobs, attack);
    let runs: Vec<AttackRun> = par_trials(jobs, trials, base, move |_, mut rng| {
        adaptive_trial(graph, &posture, &cfg, &mut rng)
    });
    let n = trials as f64;
    EvalPoint {
        success: runs.iter().filter(|r| r.reached_goal).count() as f64 / n,
        mean_alerts: runs.iter().map(|r| r.alerts as f64).sum::<f64>() / n,
    }
}

/// One step of the greedy frontier.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Knobs on after this step (the newest is last).
    pub knobs: Vec<DefenseKnob>,
    /// Attacker performance against this allocation.
    pub eval: EvalPoint,
}

/// Greedily allocates all eight knobs, best-first.
///
/// Returns one [`Allocation`] per budget K = 1..=8; ties break toward
/// lower mean alerts (a quieter defense is doing its job earlier) and
/// then toward [`DefenseKnob::ALL`] order, keeping the result fully
/// deterministic.
pub fn greedy_frontier(
    graph: &AttackGraph,
    budget: usize,
    trials: usize,
    jobs: usize,
    base: &SimRng,
) -> Vec<Allocation> {
    let mut chosen: Vec<DefenseKnob> = Vec::new();
    let mut frontier = Vec::with_capacity(DefenseKnob::ALL.len());
    while chosen.len() < DefenseKnob::ALL.len() {
        let mut best: Option<(DefenseKnob, EvalPoint)> = None;
        for knob in DefenseKnob::ALL {
            if chosen.contains(&knob) {
                continue;
            }
            let mut candidate = chosen.clone();
            candidate.push(knob);
            let eval = evaluate(graph, &candidate, budget, trials, jobs, base);
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    eval.success < b.success
                        || (eval.success == b.success && eval.mean_alerts < b.mean_alerts)
                }
            };
            if better {
                best = Some((knob, eval));
            }
        }
        let (knob, eval) = best.expect("knobs remain");
        chosen.push(knob);
        frontier.push(Allocation {
            knobs: chosen.clone(),
            eval,
        });
    }
    frontier
}

/// The fixed bottom-up curve E1 uses: the first K layers of
/// [`ArchLayer::ALL`], no runtime knobs. Index K holds the K-layer
/// posture's evaluation, K = 0..=6.
pub fn bottom_up_curve(
    graph: &AttackGraph,
    budget: usize,
    trials: usize,
    jobs: usize,
    base: &SimRng,
) -> Vec<EvalPoint> {
    (0..=ArchLayer::ALL.len())
        .map(|k| {
            let knobs: Vec<DefenseKnob> = ArchLayer::ALL[..k]
                .iter()
                .map(|&l| DefenseKnob::Layer(l))
                .collect();
            evaluate(graph, &knobs, budget, trials, jobs, base)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AttackEdge, Capability, EdgeSource, ProbPoint};

    /// Goal reachable only through the Data layer; defending Data is
    /// the single decisive knob.
    fn data_only_graph() -> AttackGraph {
        let mut g = AttackGraph::new();
        g.add_edge(AttackEdge {
            name: "backdoor",
            from: Capability::External,
            to: Capability::SafetyImpact,
            layer: ArchLayer::Data,
            stride: autosec_sim::Stride::Tampering,
            source: EdgeSource::Scenario("backdoor"),
            undefended: ProbPoint {
                success: 0.9,
                detect: 0.1,
            },
            defended: ProbPoint {
                success: 0.0,
                detect: 1.0,
            },
        });
        g
    }

    #[test]
    fn resolve_splits_layer_and_runtime_knobs() {
        let (posture, cfg) = resolve_knobs(
            &[
                DefenseKnob::Layer(ArchLayer::Network),
                DefenseKnob::ActiveResponse,
            ],
            &AttackConfig::new(7),
        );
        assert!(posture.enabled(ArchLayer::Network));
        assert!(!posture.enabled(ArchLayer::Data));
        assert!(cfg.active_response);
        assert!(!cfg.alert_correlation);
        assert_eq!(cfg.budget, 7);
    }

    #[test]
    fn greedy_picks_the_decisive_knob_first() {
        let g = data_only_graph();
        let frontier = greedy_frontier(&g, 6, 200, 1, &SimRng::seed(5).fork("eval"));
        assert_eq!(frontier.len(), DefenseKnob::ALL.len());
        assert_eq!(
            *frontier[0].knobs.last().expect("one knob"),
            DefenseKnob::Layer(ArchLayer::Data)
        );
        assert_eq!(frontier[0].eval.success, 0.0);
    }

    #[test]
    fn greedy_success_is_monotone_nonincreasing() {
        let g = data_only_graph();
        let frontier = greedy_frontier(&g, 6, 200, 1, &SimRng::seed(6).fork("eval"));
        for w in frontier.windows(2) {
            assert!(w[1].eval.success <= w[0].eval.success + 1e-12);
        }
    }

    #[test]
    fn evaluate_is_jobs_invariant() {
        let g = data_only_graph();
        let base = SimRng::seed(8).fork("eval");
        let a = evaluate(&g, &[], 6, 100, 1, &base);
        let b = evaluate(&g, &[], 6, 100, 4, &base);
        assert_eq!(a, b);
    }

    #[test]
    fn bottom_up_curve_has_seven_points() {
        let g = data_only_graph();
        let curve = bottom_up_curve(&g, 6, 100, 1, &SimRng::seed(9).fork("eval"));
        assert_eq!(curve.len(), 7);
        // Data is layer index 3 bottom-up: once K ≥ 4 the backdoor is
        // closed.
        assert!(curve[0].success > 0.5);
        assert_eq!(curve[4].success, 0.0);
        assert_eq!(curve[6].success, 0.0);
    }
}
