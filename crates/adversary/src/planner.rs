//! Budgeted best-path planning over the attack graph.
//!
//! The planner answers: given the capabilities already held, which
//! chain of at most `budget` attack steps maximizes `success × stealth`
//! to the goal? `success` is the product of per-edge success
//! probabilities under the posture in play; `stealth` is the product of
//! `1 − detect`. The capability order is topological
//! ([`Capability::ALL`]), so a single ascending dynamic-programming
//! pass over `(capability, steps-used)` states is exact.

use autosec_core::campaign::DefensePosture;

use crate::graph::{AttackGraph, Capability, CapabilitySet, EdgeSet};

/// A planned edge chain toward the goal.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedPath {
    /// Edge indices into [`AttackGraph::edges`], in execution order.
    pub edges: Vec<usize>,
    /// Product of edge success probabilities.
    pub success: f64,
    /// Product of edge `1 − detect` probabilities.
    pub stealth: f64,
}

impl PlannedPath {
    /// The planner's objective: expected silent compromise.
    pub fn score(&self) -> f64 {
        self.success * self.stealth
    }
}

/// Best path from any capability in `owned` to [`AttackGraph::GOAL`]
/// using at most `budget` edges, skipping `banned` edges and edges
/// with zero success under `posture`.
///
/// Returns `None` when the goal is unreachable within the budget.
pub fn best_path(
    graph: &AttackGraph,
    posture: &DefensePosture,
    budget: usize,
    owned: &CapabilitySet,
    banned: &EdgeSet,
) -> Option<PlannedPath> {
    best_path_weighted(graph, posture, budget, owned, banned, 1.0)
}

/// [`best_path`] with a stealth-vs-speed tradeoff: the objective is
/// `success × stealth^stealth_weight`.
///
/// Weight `1.0` is the classic silent-compromise objective (and is
/// computed on the exact same arithmetic as [`best_path`], so results
/// are bit-identical). Weights below `1.0` discount detection pressure
/// — a speed-focused attacker accepts louder routes when they are
/// shorter or surer — down to `0.0`, which ignores detection entirely.
/// Weights above `1.0` exaggerate stealth aversion.
pub fn best_path_weighted(
    graph: &AttackGraph,
    posture: &DefensePosture,
    budget: usize,
    owned: &CapabilitySet,
    banned: &EdgeSet,
    stealth_weight: f64,
) -> Option<PlannedPath> {
    // Branching on the default keeps the weight-1 objective on the
    // exact multiplication `best_path` always used.
    let score = |succ: f64, stealth: f64| {
        if stealth_weight == 1.0 {
            succ * stealth
        } else {
            succ * stealth.powf(stealth_weight)
        }
    };
    if owned.contains(AttackGraph::GOAL) {
        return Some(PlannedPath {
            edges: Vec::new(),
            success: 1.0,
            stealth: 1.0,
        });
    }
    if budget == 0 || owned.is_empty() {
        return None;
    }

    let n = Capability::ALL.len();
    // dp[node][steps] = (success, stealth, incoming edge, prev steps).
    let mut dp = vec![vec![None::<(f64, f64, usize)>; budget + 1]; n];
    for c in Capability::ALL {
        if owned.contains(c) {
            dp[c.index()][0] = Some((1.0, 1.0, usize::MAX));
        }
    }

    // Topological relaxation: edges only ascend, so walking
    // capabilities in order visits every `from` after it is final.
    for from in Capability::ALL {
        for (idx, edge) in graph.edges_from(from) {
            if banned.contains(idx) {
                continue;
            }
            let p = edge.prob(posture);
            if p.success <= 0.0 {
                continue;
            }
            let to = edge.to.index();
            for steps in 0..budget {
                let Some((succ, stealth, _)) = dp[from.index()][steps] else {
                    continue;
                };
                let cand = (succ * p.success, stealth * (1.0 - p.detect), idx);
                let better = match dp[to][steps + 1] {
                    None => true,
                    Some((s2, t2, _)) => score(cand.0, cand.1) > score(s2, t2),
                };
                if better {
                    dp[to][steps + 1] = Some(cand);
                }
            }
        }
    }

    // Best goal state over all step counts; fewest steps wins ties so
    // re-planning never pads a path with useless hops.
    let goal = AttackGraph::GOAL.index();
    let (mut steps, mut best) = (0, None::<(f64, f64, usize)>);
    for (s, state) in dp[goal].iter().enumerate() {
        let Some((succ, stealth, e)) = *state else {
            continue;
        };
        if best.is_none_or(|(bs, bt, _)| score(succ, stealth) > score(bs, bt)) {
            best = Some((succ, stealth, e));
            steps = s;
        }
    }
    let (success, stealth, _) = best?;

    // Reconstruct the chain by walking incoming edges backwards.
    let mut edges = Vec::with_capacity(steps);
    let mut node = goal;
    let mut s = steps;
    while s > 0 {
        let (_, _, e) = dp[node][s].expect("reconstruction follows filled states");
        edges.push(e);
        node = graph.edges()[e].from.index();
        s -= 1;
    }
    edges.reverse();
    Some(PlannedPath {
        edges,
        success,
        stealth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AttackEdge, EdgeSource, ProbPoint};
    use autosec_sim::ArchLayer;

    fn edge(
        name: &'static str,
        from: Capability,
        to: Capability,
        layer: ArchLayer,
        success: f64,
        detect: f64,
    ) -> AttackEdge {
        AttackEdge {
            name,
            from,
            to,
            layer,
            stride: autosec_sim::Stride::Tampering,
            source: EdgeSource::Scenario(name),
            undefended: ProbPoint { success, detect },
            defended: ProbPoint {
                success: 0.0,
                detect: 1.0,
            },
        }
    }

    /// Two routes to the goal: a long quiet one and a short loud one.
    fn two_route_graph() -> AttackGraph {
        let mut g = AttackGraph::new();
        g.add_edge(edge(
            "quiet-1",
            Capability::External,
            Capability::VehicleAccess,
            ArchLayer::Physical,
            0.9,
            0.0,
        ));
        g.add_edge(edge(
            "quiet-2",
            Capability::VehicleAccess,
            Capability::BusAccess,
            ArchLayer::Network,
            0.9,
            0.0,
        ));
        g.add_edge(edge(
            "quiet-3",
            Capability::BusAccess,
            Capability::SafetyImpact,
            ArchLayer::Network,
            0.9,
            0.0,
        ));
        g.add_edge(edge(
            "loud-1",
            Capability::External,
            Capability::FusedViewWrite,
            ArchLayer::Collaboration,
            1.0,
            0.8,
        ));
        g.add_edge(edge(
            "loud-2",
            Capability::FusedViewWrite,
            Capability::SafetyImpact,
            ArchLayer::SystemOfSystems,
            1.0,
            0.0,
        ));
        g
    }

    #[test]
    fn prefers_the_stealthier_route_when_budget_allows() {
        let g = two_route_graph();
        let p = best_path(
            &g,
            &DefensePosture::none(),
            5,
            &CapabilitySet::start(),
            &EdgeSet::empty(),
        )
        .expect("reachable");
        // 0.9³ = 0.729 silent beats 1.0 × 0.2 stealth.
        let names: Vec<_> = p.edges.iter().map(|&i| g.edges()[i].name).collect();
        assert_eq!(names, vec!["quiet-1", "quiet-2", "quiet-3"]);
        assert!((p.score() - 0.729).abs() < 1e-12);
    }

    #[test]
    fn tight_budget_forces_the_short_route() {
        let g = two_route_graph();
        let p = best_path(
            &g,
            &DefensePosture::none(),
            2,
            &CapabilitySet::start(),
            &EdgeSet::empty(),
        )
        .expect("reachable");
        let names: Vec<_> = p.edges.iter().map(|&i| g.edges()[i].name).collect();
        assert_eq!(names, vec!["loud-1", "loud-2"]);
    }

    #[test]
    fn banned_edges_reroute_the_plan() {
        let g = two_route_graph();
        let mut banned = EdgeSet::empty();
        banned.insert(0); // quiet-1
        let p = best_path(
            &g,
            &DefensePosture::none(),
            5,
            &CapabilitySet::start(),
            &banned,
        )
        .expect("loud route remains");
        assert_eq!(g.edges()[p.edges[0]].name, "loud-1");
    }

    #[test]
    fn owned_capabilities_shorten_the_plan() {
        let g = two_route_graph();
        let mut owned = CapabilitySet::start();
        owned.insert(Capability::BusAccess);
        let p = best_path(&g, &DefensePosture::none(), 5, &owned, &EdgeSet::empty())
            .expect("reachable");
        assert_eq!(p.edges.len(), 1, "plans from the deepest foothold");
        assert_eq!(g.edges()[p.edges[0]].name, "quiet-3");
    }

    #[test]
    fn defended_zero_success_edges_block_the_route() {
        let g = two_route_graph();
        // Full posture zeroes every edge in this toy graph.
        assert!(best_path(
            &g,
            &DefensePosture::full(),
            5,
            &CapabilitySet::start(),
            &EdgeSet::empty(),
        )
        .is_none());
    }

    #[test]
    fn goal_already_owned_is_the_empty_plan() {
        let g = two_route_graph();
        let mut owned = CapabilitySet::start();
        owned.insert(Capability::SafetyImpact);
        let p = best_path(&g, &DefensePosture::none(), 1, &owned, &EdgeSet::empty())
            .expect("trivially done");
        assert!(p.edges.is_empty());
        assert_eq!(p.score(), 1.0);
    }

    #[test]
    fn zero_stealth_weight_ignores_detection_pressure() {
        let g = two_route_graph();
        // With detection discounted entirely the sure loud route
        // (success 1.0) beats the quiet one (0.9³), even at a budget
        // that allows either.
        let p = best_path_weighted(
            &g,
            &DefensePosture::none(),
            5,
            &CapabilitySet::start(),
            &EdgeSet::empty(),
            0.0,
        )
        .expect("reachable");
        let names: Vec<_> = p.edges.iter().map(|&i| g.edges()[i].name).collect();
        assert_eq!(names, vec!["loud-1", "loud-2"]);
    }

    #[test]
    fn weight_one_is_bit_identical_to_best_path() {
        let g = two_route_graph();
        let a = best_path(
            &g,
            &DefensePosture::none(),
            5,
            &CapabilitySet::start(),
            &EdgeSet::empty(),
        );
        let b = best_path_weighted(
            &g,
            &DefensePosture::none(),
            5,
            &CapabilitySet::start(),
            &EdgeSet::empty(),
            1.0,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let g = two_route_graph();
        assert!(best_path(
            &g,
            &DefensePosture::none(),
            0,
            &CapabilitySet::start(),
            &EdgeSet::empty(),
        )
        .is_none());
    }
}
