//! Metric recorders: counters, histograms and time series, grouped into a
//! named [`MetricSet`] that experiment harnesses print or assert on.

use std::collections::BTreeMap;
use std::fmt;

use crate::stats::Summary;
use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A value recorder that keeps raw samples and summarizes on demand.
///
/// Intentionally simple (stores all samples) — experiment scales here are
/// at most millions of points.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Statistical summary of everything recorded so far.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.samples)
    }
}

/// A `(time, value)` series, e.g. bus utilisation over a run.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// New empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point. Points should be appended in nondecreasing time
    /// order; this is asserted in debug builds.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(lt, _)| lt <= t),
            "time series must be appended in order"
        );
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Time-weighted average of the series over its recorded span, treating
    /// each value as holding until the next point. Returns `0.0` with fewer
    /// than two points.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut dur = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0.since(w[0].0).as_ps() as f64;
            acc += w[0].1 * dt;
            dur += dt;
        }
        if dur == 0.0 {
            0.0
        } else {
            acc / dur
        }
    }
}

/// A named collection of metrics for one simulation run.
///
/// # Example
///
/// ```
/// use autosec_sim::MetricSet;
/// let mut m = MetricSet::new();
/// m.counter("frames_sent").add(10);
/// m.histogram("latency_us").record(12.5);
/// assert_eq!(m.counter("frames_sent").value(), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricSet {
    /// New empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to the counter named `name`, creating it at zero.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// Read-only counter value; zero if never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or_default().value()
    }

    /// Mutable access to the histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Read-only histogram lookup.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access to the time series named `name`.
    pub fn time_series(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_owned()).or_default()
    }

    /// Read-only series lookup.
    pub fn time_series_ref(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.value()))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another metric set into this one (counters add, samples and
    /// series concatenate). Used to aggregate per-trial metrics.
    pub fn merge(&mut self, other: &MetricSet) {
        for (k, v) in &other.counters {
            self.counters.entry(k.clone()).or_default().add(v.value());
        }
        for (k, v) in &other.histograms {
            let h = self.histograms.entry(k.clone()).or_default();
            for &s in v.samples() {
                h.record(s);
            }
        }
        for (k, v) in &other.series {
            let s = self.series.entry(k.clone()).or_default();
            for &(t, x) in v.points() {
                s.points.push((t, x));
            }
        }
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, c) in &self.counters {
            writeln!(f, "counter {name} = {c}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "hist    {name}: {}", h.summary())?;
        }
        for (name, s) in &self.series {
            writeln!(
                f,
                "series  {name}: {} pts, twa={:.4}",
                s.len(),
                s.time_weighted_mean()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        for i in 1..=10 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.n, 10);
        assert!((s.mean - 5.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut ts = TimeSeries::new();
        // value 0 for 9 units, value 10 for 1 unit -> twa of first 10 units
        // uses segments [0,9):0 and [9,10):10 => (0*9 + 10*1)/10 = 1.0
        ts.push(SimTime::from_ns(0), 0.0);
        ts.push(SimTime::from_ns(9), 10.0);
        ts.push(SimTime::from_ns(10), 0.0);
        assert!((ts.time_weighted_mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metric_set_named_access() {
        let mut m = MetricSet::new();
        m.counter("a").incr();
        m.counter("a").incr();
        m.histogram("h").record(3.0);
        m.time_series("s").push(SimTime::ZERO, 1.0);
        assert_eq!(m.counter_value("a"), 2);
        assert_eq!(m.counter_value("missing"), 0);
        assert_eq!(m.histogram_ref("h").unwrap().len(), 1);
        assert_eq!(m.time_series_ref("s").unwrap().len(), 1);
    }

    #[test]
    fn merge_adds_and_concats() {
        let mut a = MetricSet::new();
        a.counter("c").add(2);
        a.histogram("h").record(1.0);
        let mut b = MetricSet::new();
        b.counter("c").add(3);
        b.histogram("h").record(2.0);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), 5);
        assert_eq!(a.histogram_ref("h").unwrap().len(), 2);
    }

    #[test]
    fn display_lists_everything() {
        let mut m = MetricSet::new();
        m.counter("x").incr();
        m.histogram("y").record(1.0);
        let out = m.to_string();
        assert!(out.contains("counter x = 1"));
        assert!(out.contains("hist    y"));
    }
}
