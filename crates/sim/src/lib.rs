//! # autosec-sim
//!
//! Discrete-event simulation kernel shared by every layer of the `autosec`
//! workbench: a virtual clock with picosecond resolution, an event
//! scheduler, deterministic RNG plumbing, metric recorders and a lightweight
//! trace facility.
//!
//! The paper's experiments (E2–E13, see `DESIGN.md`) all run on top of this
//! kernel so that results are reproducible from a seed and independent of
//! wall-clock time.
//!
//! ## Example
//!
//! ```
//! use autosec_sim::{Scheduler, SimTime};
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule_at(SimTime::from_us(5), "late");
//! sched.schedule_at(SimTime::from_us(1), "early");
//! let (t, ev) = sched.pop().unwrap();
//! assert_eq!(ev, "early");
//! assert_eq!(t, SimTime::from_us(1));
//! ```

pub mod inject;
pub mod layer;
pub mod metrics;
pub mod rng;
pub mod scheduler;
pub mod stats;
pub mod stride;
pub mod time;
pub mod trace;

pub use inject::{ChannelFault, FaultEffect, FaultTarget, FrameAction, InjectionRecord};
pub use layer::ArchLayer;
pub use metrics::{Counter, Histogram, MetricSet, TimeSeries};
pub use rng::SimRng;
pub use scheduler::Scheduler;
pub use stats::{ci95_halfwidth, mean, percentile, stddev, RunningStats, Summary};
pub use stride::Stride;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLevel, Tracer};
