//! Lightweight structured tracing for simulation runs.
//!
//! Components emit [`TraceEvent`]s into a [`Tracer`]; tests and the
//! cross-layer assessment in `autosec-core` filter them to verify that a
//! given attack or defense actually fired.

use std::fmt;

use crate::time::SimTime;

/// Severity of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Fine-grained progress.
    Debug,
    /// Normal operational event.
    Info,
    /// Unusual but handled situation (e.g. replay drop).
    Warn,
    /// Security-relevant detection or failure.
    Alert,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
            TraceLevel::Alert => "ALERT",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Emitting component, e.g. `"ivn.bus0"` or `"phy.receiver"`.
    pub component: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.level, self.component, self.message
        )
    }
}

/// An append-only event log with a minimum-level filter.
///
/// # Example
///
/// ```
/// use autosec_sim::{SimTime, TraceLevel, Tracer};
/// let mut tr = Tracer::new(TraceLevel::Info);
/// tr.emit(SimTime::ZERO, TraceLevel::Debug, "bus", "ignored");
/// tr.emit(SimTime::ZERO, TraceLevel::Alert, "ids", "masquerade detected");
/// assert_eq!(tr.events().len(), 1);
/// assert_eq!(tr.alerts().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    min_level: TraceLevel,
    events: Vec<TraceEvent>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TraceLevel::Info)
    }
}

impl Tracer {
    /// Creates a tracer that keeps events at `min_level` or above.
    pub fn new(min_level: TraceLevel) -> Self {
        Self {
            min_level,
            events: Vec::new(),
        }
    }

    /// Records an event if it passes the level filter.
    pub fn emit(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        component: impl Into<String>,
        message: impl Into<String>,
    ) {
        if level >= self.min_level {
            self.events.push(TraceEvent {
                at,
                level,
                component: component.into(),
                message: message.into(),
            });
        }
    }

    /// All kept events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterator over alert-level events.
    pub fn alerts(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.level == TraceLevel::Alert)
    }

    /// Events from components whose name starts with `prefix`.
    pub fn from_component<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.component.starts_with(prefix))
    }

    /// Whether any kept event message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.events.iter().any(|e| e.message.contains(needle))
    }

    /// Clears the log, keeping the filter.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering() {
        assert!(TraceLevel::Debug < TraceLevel::Info);
        assert!(TraceLevel::Info < TraceLevel::Warn);
        assert!(TraceLevel::Warn < TraceLevel::Alert);
    }

    #[test]
    fn filter_drops_below_min() {
        let mut t = Tracer::new(TraceLevel::Warn);
        t.emit(SimTime::ZERO, TraceLevel::Info, "a", "x");
        t.emit(SimTime::ZERO, TraceLevel::Warn, "a", "y");
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].message, "y");
    }

    #[test]
    fn component_prefix_filter() {
        let mut t = Tracer::new(TraceLevel::Debug);
        t.emit(SimTime::ZERO, TraceLevel::Info, "ivn.bus0", "m1");
        t.emit(SimTime::ZERO, TraceLevel::Info, "ivn.bus1", "m2");
        t.emit(SimTime::ZERO, TraceLevel::Info, "phy.rx", "m3");
        assert_eq!(t.from_component("ivn.").count(), 2);
    }

    #[test]
    fn contains_searches_messages() {
        let mut t = Tracer::new(TraceLevel::Debug);
        t.emit(
            SimTime::ZERO,
            TraceLevel::Alert,
            "ids",
            "masquerade detected",
        );
        assert!(t.contains("masquerade"));
        assert!(!t.contains("replay"));
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            at: SimTime::from_ms(1),
            level: TraceLevel::Alert,
            component: "ids".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "[1ms ALERT ids] boom");
    }

    #[test]
    fn clear_keeps_filter() {
        let mut t = Tracer::new(TraceLevel::Warn);
        t.emit(SimTime::ZERO, TraceLevel::Alert, "a", "x");
        t.clear();
        assert!(t.events().is_empty());
        t.emit(SimTime::ZERO, TraceLevel::Info, "a", "dropped");
        assert!(t.events().is_empty());
    }
}
