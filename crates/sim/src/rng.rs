//! Deterministic random-number plumbing.
//!
//! Every experiment takes a single `u64` master seed; independent
//! subsystems derive their own decorrelated streams from it so that adding
//! a component never perturbs the random sequence of another.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable RNG with support for deriving independent child streams.
///
/// Wraps [`rand::rngs::StdRng`], adding [`SimRng::fork`] — a stable
/// label-based stream-split (SplitMix-style seed mixing).
///
/// # Example
///
/// ```
/// use autosec_sim::SimRng;
/// use rand::RngCore;
/// let mut root = SimRng::seed(42);
/// let mut channel = root.fork("uwb-channel");
/// let mut attacker = root.fork("attacker");
/// // Streams are decorrelated and reproducible:
/// assert_eq!(SimRng::seed(42).fork("uwb-channel").next_u64(), channel.next_u64());
/// assert_ne!(channel.next_u64(), attacker.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label, used to bind fork labels into seeds.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl SimRng {
    /// Creates an RNG from a master seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// The master seed this stream was created from.
    pub fn master_seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream bound to `label`.
    ///
    /// Forking is a pure function of `(master_seed, label)` — it does not
    /// consume state from `self`, so fork order never matters.
    pub fn fork(&self, label: &str) -> SimRng {
        let child = splitmix64(self.seed ^ fnv1a(label).rotate_left(17));
        SimRng {
            inner: StdRng::seed_from_u64(child),
            seed: child,
        }
    }

    /// Derives an independent child stream bound to a numeric index
    /// (e.g. per-trial streams in a Monte-Carlo sweep).
    pub fn fork_idx(&self, idx: u64) -> SimRng {
        let child = splitmix64(self.seed ^ splitmix64(idx ^ 0xA5A5_5A5A_DEAD_BEEF));
        SimRng {
            inner: StdRng::seed_from_u64(child),
            seed: child,
        }
    }

    /// Samples a standard-normal value (Box–Muller, polar-free variant).
    pub fn normal(&mut self) -> f64 {
        // Marsaglia polar method.
        loop {
            let u: f64 = self.inner.gen_range(-1.0..1.0);
            let v: f64 = self.inner.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Samples a normal with given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Samples an exponential inter-arrival time with the given rate
    /// (events per unit); returns the time in the same unit.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_unit` is not strictly positive.
    pub fn exponential(&mut self, rate_per_unit: f64) -> f64 {
        assert!(rate_per_unit > 0.0, "exponential rate must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate_per_unit
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_stable_and_order_independent() {
        let root = SimRng::seed(99);
        let mut c1 = root.fork("x");
        let _ = root.fork("y");
        let mut c2 = SimRng::seed(99).fork("x");
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn forks_decorrelate() {
        let root = SimRng::seed(1);
        let a = root.fork("a").next_u64();
        let b = root.fork("b").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn fork_idx_distinct() {
        let root = SimRng::seed(5);
        let vals: Vec<u64> = (0..16).map(|i| root.fork_idx(i).next_u64()).collect();
        let mut dedup = vals.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), vals.len());
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = SimRng::seed(1234);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn chance_respects_extremes() {
        let mut rng = SimRng::seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed(8);
        let rate = 4.0;
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }
}
