//! Fault-injection hook points shared by every layer crate.
//!
//! The fault subsystem (`autosec-faults`) schedules *effects* against
//! layer subsystems; this module holds the layer-agnostic vocabulary so
//! that each layer crate can expose a small [`FaultTarget`] adapter
//! instead of ad-hoc mutation:
//!
//! - [`FaultEffect`] — the parameterized effect catalogue (frame drop /
//!   delay / corrupt / duplicate, energy bursts, sensor dropout,
//!   fabricated detections, node crash/restart, update rollback, clock
//!   skew, link failures).
//! - [`ChannelFault`] — a per-frame interception hook for bus/channel
//!   simulations, folding the frame-level effects into one sampling
//!   decision per frame.
//! - [`FaultTarget`] — the adapter trait: apply a set of effects to the
//!   subsystem, report the residual service level and whether the
//!   layer's own defenses noticed.
//!
//! Determinism contract: every random decision is drawn from the
//! `SimRng` substream handed in by the caller, and **no randomness is
//! consumed when no effect is active** — an empty effect set (or one
//! whose effects are all [`FaultEffect::is_noop`]) must leave the
//! subsystem's behaviour bit-identical to a fault-free run.

use crate::layer::ArchLayer;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// One parameterized fault effect, tagged by the layer it targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEffect {
    /// Network: drop each frame with probability `p`.
    DropFrames {
        /// Per-frame drop probability.
        p: f64,
    },
    /// Network: delay each frame with probability `p` by `delay`.
    DelayFrames {
        /// Per-frame delay probability.
        p: f64,
        /// Added queueing delay.
        delay: SimDuration,
    },
    /// Network: corrupt each frame with probability `p` (the frame
    /// arrives mangled — wrong id / payload).
    CorruptFrames {
        /// Per-frame corruption probability.
        p: f64,
    },
    /// Network: duplicate each frame with probability `p`.
    DuplicateFrames {
        /// Per-frame duplication probability.
        p: f64,
    },
    /// Physical: attacker-energy burst of the given pulse power
    /// injected into the ranging channel.
    EnergyBurst {
        /// Injected pulse power (legitimate pulses are ~1.0).
        power: f64,
    },
    /// Physical: each sensor measurement is lost with probability `p`.
    SensorDropout {
        /// Per-measurement dropout probability.
        p: f64,
    },
    /// Collaboration: `count` fabricated detections injected per
    /// perception round.
    FabricateDetections {
        /// Ghost detections per round.
        count: usize,
    },
    /// Software platform: compute node `node` crashes.
    CrashNode {
        /// Index of the crashed node.
        node: usize,
    },
    /// Software platform: compute node `node` restarts and stranded
    /// components are re-placed.
    RestartNode {
        /// Index of the restarted node.
        node: usize,
    },
    /// Software platform: an update rollback (downgrade) is pushed.
    RollbackUpdate,
    /// Data: unidirectional delay attack against time sync, shifting
    /// the slave clock by `skew_ns / 2`.
    ClockSkew {
        /// Injected one-way delay in nanoseconds.
        skew_ns: f64,
    },
    /// System of systems: each coupling link fails with probability
    /// `p`.
    FailLinks {
        /// Per-link failure probability.
        p: f64,
    },
}

impl FaultEffect {
    /// The layer this effect targets.
    pub fn layer(&self) -> ArchLayer {
        match self {
            FaultEffect::DropFrames { .. }
            | FaultEffect::DelayFrames { .. }
            | FaultEffect::CorruptFrames { .. }
            | FaultEffect::DuplicateFrames { .. } => ArchLayer::Network,
            FaultEffect::EnergyBurst { .. } | FaultEffect::SensorDropout { .. } => {
                ArchLayer::Physical
            }
            FaultEffect::FabricateDetections { .. } => ArchLayer::Collaboration,
            FaultEffect::CrashNode { .. }
            | FaultEffect::RestartNode { .. }
            | FaultEffect::RollbackUpdate => ArchLayer::SoftwarePlatform,
            FaultEffect::ClockSkew { .. } => ArchLayer::Data,
            FaultEffect::FailLinks { .. } => ArchLayer::SystemOfSystems,
        }
    }

    /// Stable effect name (rng labels, table rows, alert details).
    pub fn name(&self) -> &'static str {
        match self {
            FaultEffect::DropFrames { .. } => "frame-drop",
            FaultEffect::DelayFrames { .. } => "frame-delay",
            FaultEffect::CorruptFrames { .. } => "frame-corrupt",
            FaultEffect::DuplicateFrames { .. } => "frame-duplicate",
            FaultEffect::EnergyBurst { .. } => "energy-burst",
            FaultEffect::SensorDropout { .. } => "sensor-dropout",
            FaultEffect::FabricateDetections { .. } => "fabricated-detections",
            FaultEffect::CrashNode { .. } => "node-crash",
            FaultEffect::RestartNode { .. } => "node-restart",
            FaultEffect::RollbackUpdate => "update-rollback",
            FaultEffect::ClockSkew { .. } => "clock-skew",
            FaultEffect::FailLinks { .. } => "link-failure",
        }
    }

    /// Whether the effect is a structural no-op (zero probability,
    /// power, count or skew). No-op effects must not perturb any
    /// random stream.
    pub fn is_noop(&self) -> bool {
        match *self {
            FaultEffect::DropFrames { p }
            | FaultEffect::DelayFrames { p, .. }
            | FaultEffect::CorruptFrames { p }
            | FaultEffect::DuplicateFrames { p }
            | FaultEffect::SensorDropout { p }
            | FaultEffect::FailLinks { p } => p <= 0.0,
            FaultEffect::EnergyBurst { power } => power <= 0.0,
            FaultEffect::FabricateDetections { count } => count == 0,
            FaultEffect::ClockSkew { skew_ns } => skew_ns <= 0.0,
            FaultEffect::CrashNode { .. }
            | FaultEffect::RestartNode { .. }
            | FaultEffect::RollbackUpdate => false,
        }
    }
}

/// What a channel hook decides for one intercepted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameAction {
    /// Deliver unchanged.
    Pass,
    /// Silently lose the frame.
    Drop,
    /// Deliver after the extra delay.
    Delay(SimDuration),
    /// Deliver a mangled copy.
    Corrupt,
    /// Deliver twice.
    Duplicate,
}

/// A bus/channel interception hook: the frame-level
/// [`FaultEffect`]s folded into per-frame probabilities.
///
/// Bus simulations consult [`ChannelFault::decide`] once per frame.
/// Decisions are drawn in a fixed order (drop, delay, corrupt,
/// duplicate) so a given substream always produces the same action
/// sequence. A [`ChannelFault::is_noop`] hook must be skipped entirely
/// by the caller — `decide` is never invoked, so the fault-free path
/// consumes no randomness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelFault {
    /// Per-frame drop probability.
    pub drop_p: f64,
    /// Per-frame delay probability.
    pub delay_p: f64,
    /// Added delay when a frame is delayed.
    pub delay: SimDuration,
    /// Per-frame corruption probability.
    pub corrupt_p: f64,
    /// Per-frame duplication probability.
    pub duplicate_p: f64,
}

impl ChannelFault {
    /// Folds the frame-level effects of `effects` into one hook;
    /// non-frame effects are ignored.
    pub fn from_effects(effects: &[FaultEffect]) -> Self {
        let mut cf = ChannelFault::default();
        for e in effects {
            match *e {
                FaultEffect::DropFrames { p } => cf.drop_p = cf.drop_p.max(p),
                FaultEffect::DelayFrames { p, delay } => {
                    cf.delay_p = cf.delay_p.max(p);
                    cf.delay = cf.delay.max(delay);
                }
                FaultEffect::CorruptFrames { p } => cf.corrupt_p = cf.corrupt_p.max(p),
                FaultEffect::DuplicateFrames { p } => cf.duplicate_p = cf.duplicate_p.max(p),
                _ => {}
            }
        }
        cf
    }

    /// Whether every probability is zero (callers skip the hook).
    pub fn is_noop(&self) -> bool {
        self.drop_p <= 0.0
            && self.delay_p <= 0.0
            && self.corrupt_p <= 0.0
            && self.duplicate_p <= 0.0
    }

    /// Samples the action for one frame. Draw order is fixed:
    /// drop, then delay, then corrupt, then duplicate.
    pub fn decide(&self, rng: &mut SimRng) -> FrameAction {
        if self.drop_p > 0.0 && rng.chance(self.drop_p) {
            return FrameAction::Drop;
        }
        if self.delay_p > 0.0 && rng.chance(self.delay_p) {
            return FrameAction::Delay(self.delay);
        }
        if self.corrupt_p > 0.0 && rng.chance(self.corrupt_p) {
            return FrameAction::Corrupt;
        }
        if self.duplicate_p > 0.0 && rng.chance(self.duplicate_p) {
            return FrameAction::Duplicate;
        }
        FrameAction::Pass
    }
}

/// What a target reports after one injection round.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// The layer the target models.
    pub layer: ArchLayer,
    /// The target adapter's name.
    pub target: &'static str,
    /// Whether any effect was applicable to this target.
    pub applied: bool,
    /// Residual service level in `[0, 1]` (1.0 = unimpaired).
    pub health: f64,
    /// Whether the layer's own defenses noticed the fault (only
    /// possible when the target ran defended).
    pub detected: bool,
    /// Human-readable detail for alerts/reports.
    pub detail: String,
}

impl InjectionRecord {
    /// A clean record: nothing applied, full health.
    pub fn clean(layer: ArchLayer, target: &'static str) -> Self {
        Self {
            layer,
            target,
            applied: false,
            health: 1.0,
            detected: false,
            detail: String::new(),
        }
    }
}

/// The adapter each layer crate exposes to the fault engine.
///
/// `apply` runs one micro-simulation of the subsystem with `effects`
/// active and measures the residual service level; with an empty (or
/// all-no-op) effect set it must report full health **without
/// consuming `rng` differently than the fault-free model would** — the
/// fault-free == no-op guarantee the property tests enforce.
pub trait FaultTarget {
    /// The layer this target models.
    fn layer(&self) -> ArchLayer;

    /// Stable adapter name (alert subjects, table rows).
    fn name(&self) -> &'static str;

    /// Applies `effects` and measures the outcome. `defended` toggles
    /// the layer's own defenses (detection is only possible when
    /// defended).
    fn apply(
        &mut self,
        effects: &[FaultEffect],
        defended: bool,
        rng: &mut SimRng,
    ) -> InjectionRecord;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_effect_names_a_layer() {
        let effects = [
            FaultEffect::DropFrames { p: 0.1 },
            FaultEffect::DelayFrames {
                p: 0.1,
                delay: SimDuration::from_ms(5),
            },
            FaultEffect::CorruptFrames { p: 0.1 },
            FaultEffect::DuplicateFrames { p: 0.1 },
            FaultEffect::EnergyBurst { power: 4.0 },
            FaultEffect::SensorDropout { p: 0.1 },
            FaultEffect::FabricateDetections { count: 2 },
            FaultEffect::CrashNode { node: 0 },
            FaultEffect::RestartNode { node: 0 },
            FaultEffect::RollbackUpdate,
            FaultEffect::ClockSkew { skew_ns: 1000.0 },
            FaultEffect::FailLinks { p: 0.1 },
        ];
        let mut names = std::collections::BTreeSet::new();
        for e in effects {
            assert!(!e.name().is_empty());
            names.insert(e.name());
            let _ = e.layer();
            assert!(!e.is_noop(), "{:?} should be active", e);
        }
        assert_eq!(names.len(), effects.len(), "duplicate effect names");
        // Every layer is covered by at least one effect family.
        for layer in ArchLayer::ALL {
            assert!(
                effects.iter().any(|e| e.layer() == layer),
                "{layer} has no fault family"
            );
        }
    }

    #[test]
    fn zero_intensity_is_noop() {
        assert!(FaultEffect::DropFrames { p: 0.0 }.is_noop());
        assert!(FaultEffect::EnergyBurst { power: 0.0 }.is_noop());
        assert!(FaultEffect::FabricateDetections { count: 0 }.is_noop());
        assert!(FaultEffect::ClockSkew { skew_ns: 0.0 }.is_noop());
        assert!(!FaultEffect::RollbackUpdate.is_noop());
    }

    #[test]
    fn channel_fault_folds_frame_effects() {
        let cf = ChannelFault::from_effects(&[
            FaultEffect::DropFrames { p: 0.2 },
            FaultEffect::DelayFrames {
                p: 0.3,
                delay: SimDuration::from_ms(4),
            },
            FaultEffect::EnergyBurst { power: 9.0 }, // ignored: not a frame effect
        ]);
        assert_eq!(cf.drop_p, 0.2);
        assert_eq!(cf.delay_p, 0.3);
        assert_eq!(cf.delay, SimDuration::from_ms(4));
        assert!(!cf.is_noop());
        assert!(ChannelFault::from_effects(&[FaultEffect::EnergyBurst { power: 9.0 }]).is_noop());
    }

    #[test]
    fn decide_is_deterministic_per_substream() {
        let cf = ChannelFault {
            drop_p: 0.3,
            delay_p: 0.3,
            delay: SimDuration::from_ms(2),
            corrupt_p: 0.2,
            duplicate_p: 0.1,
        };
        let base = SimRng::seed(11);
        let run = || {
            let mut rng = base.fork("decide");
            (0..64).map(|_| cf.decide(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // All actions eventually appear at these probabilities.
        let actions = run();
        assert!(actions.contains(&FrameAction::Drop));
        assert!(actions.contains(&FrameAction::Pass));
    }

    #[test]
    fn sure_drop_always_drops() {
        let cf = ChannelFault {
            drop_p: 1.0,
            ..ChannelFault::default()
        };
        let mut rng = SimRng::seed(3);
        for _ in 0..16 {
            assert_eq!(cf.decide(&mut rng), FrameAction::Drop);
        }
    }

    #[test]
    fn clean_record_reports_full_health() {
        let r = InjectionRecord::clean(ArchLayer::Network, "bus");
        assert_eq!(r.health, 1.0);
        assert!(!r.applied && !r.detected);
    }
}
