//! Small statistics helpers used by the experiment harnesses.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); `0.0` for fewer than two
/// samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Percentile by linear interpolation between closest ranks.
///
/// `p` is in `[0, 100]`. Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any sample is NaN.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean: `1.96 * s / sqrt(n)`.
pub fn ci95_halfwidth(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * stddev(xs) / (xs.len() as f64).sqrt()
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Empty input produces an all-zero summary.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self::default();
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Self {
            n: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min,
            p50: percentile(xs, 50.0),
            p95: percentile(xs, 95.0),
            p99: percentile(xs, 99.0),
            max,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
            self.n, self.mean, self.stddev, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&xs) - 2.138).abs() < 0.01);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(ci95_halfwidth(&[]), 0.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_p() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_is_consistent() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p95 > s.p50 && s.p99 > s.p95);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let a: Vec<f64> = (0..10).map(|x| x as f64).collect();
        let b: Vec<f64> = (0..1000).map(|x| (x % 10) as f64).collect();
        assert!(ci95_halfwidth(&b) < ci95_halfwidth(&a));
    }
}
