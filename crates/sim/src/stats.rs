//! Small statistics helpers used by the experiment harnesses.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); `0.0` for fewer than two
/// samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Percentile by linear interpolation between closest ranks.
///
/// `p` is in `[0, 100]`. Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any sample is NaN.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean: `1.96 * s / sqrt(n)`.
pub fn ci95_halfwidth(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * stddev(xs) / (xs.len() as f64).sqrt()
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Empty input produces an all-zero summary.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self::default();
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Self {
            n: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min,
            p50: percentile(xs, 50.0),
            p95: percentile(xs, 95.0),
            p99: percentile(xs, 99.0),
            max,
        }
    }
}

/// A mergeable moment accumulator (Welford / Chan et al.): mean,
/// variance, min, max and count without storing samples.
///
/// Built for trial-partitioned parallel sweeps: each worker folds its
/// trials into a local accumulator and the partials [`merge`] into the
/// same moments the serial fold produces (up to float associativity;
/// merging in a fixed partial order keeps results reproducible).
///
/// [`merge`]: RunningStats::merge
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.mean = x;
            self.m2 = 0.0;
            self.min = x;
            self.max = x;
            return;
        }
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator in (Chan's parallel update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n-1 denominator); `0.0` for fewer
    /// than two samples.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum sample; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
            self.n, self.mean, self.stddev, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&xs) - 2.138).abs() < 0.01);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(ci95_halfwidth(&[]), 0.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_p() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_is_consistent() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p95 > s.p50 && s.p99 > s.p95);
    }

    #[test]
    fn running_stats_match_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), xs.len() as u64);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.stddev() - stddev(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn running_stats_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.3).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut merged = RunningStats::new();
        for chunk in xs.chunks(7) {
            let mut part = RunningStats::new();
            for &x in chunk {
                part.push(x);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn running_stats_empty_merge_is_identity() {
        let mut a = RunningStats::new();
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let a: Vec<f64> = (0..10).map(|x| x as f64).collect();
        let b: Vec<f64> = (0..1000).map(|x| (x % 10) as f64).collect();
        assert!(ci95_halfwidth(&b) < ci95_halfwidth(&a));
    }
}
