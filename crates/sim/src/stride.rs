//! STRIDE threat classification — the one threat-class enum shared by
//! every crate in the workspace.
//!
//! Each registered `ScenarioStep` and every attack-graph edge carries
//! exactly one STRIDE class so the scenario generator can report a
//! STRIDE×layer coverage matrix instead of an anecdotal catalog. The
//! enum lives in `autosec-sim` (the base crate) for the same reason
//! [`ArchLayer`](crate::ArchLayer) does: both the framework and the
//! adversary crates need the vocabulary without a lossy mapping.

use std::fmt;

/// The six STRIDE threat classes (Spoofing, Tampering, Repudiation,
/// Information disclosure, Denial of service, Elevation of privilege).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stride {
    /// Pretending to be another principal (relay, masquerade, ghosts).
    Spoofing,
    /// Unauthorized modification of data or signals in flight.
    Tampering,
    /// Acting without an attributable audit trail.
    Repudiation,
    /// Exfiltration or exposure of data that should stay private.
    InformationDisclosure,
    /// Degrading or removing availability of a service.
    DenialOfService,
    /// Gaining authority beyond what was granted.
    ElevationOfPrivilege,
}

impl Stride {
    /// All classes in canonical STRIDE order.
    pub const ALL: [Stride; 6] = [
        Stride::Spoofing,
        Stride::Tampering,
        Stride::Repudiation,
        Stride::InformationDisclosure,
        Stride::DenialOfService,
        Stride::ElevationOfPrivilege,
    ];

    /// Stable kebab-case label used in artifacts and CLI filters.
    pub fn label(&self) -> &'static str {
        match self {
            Stride::Spoofing => "spoofing",
            Stride::Tampering => "tampering",
            Stride::Repudiation => "repudiation",
            Stride::InformationDisclosure => "info-disclosure",
            Stride::DenialOfService => "denial-of-service",
            Stride::ElevationOfPrivilege => "elevation-of-privilege",
        }
    }

    /// Parse a label back into a class. Accepts the canonical labels
    /// plus the common single-letter STRIDE mnemonics.
    pub fn parse(s: &str) -> Option<Stride> {
        match s.to_ascii_lowercase().as_str() {
            "spoofing" | "s" => Some(Stride::Spoofing),
            "tampering" | "t" => Some(Stride::Tampering),
            "repudiation" | "r" => Some(Stride::Repudiation),
            "info-disclosure" | "information-disclosure" | "i" => {
                Some(Stride::InformationDisclosure)
            }
            "denial-of-service" | "dos" | "d" => Some(Stride::DenialOfService),
            "elevation-of-privilege" | "eop" | "e" => Some(Stride::ElevationOfPrivilege),
            _ => None,
        }
    }
}

impl fmt::Display for Stride {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_classes_in_order() {
        assert_eq!(Stride::ALL.len(), 6);
        assert!(Stride::Spoofing < Stride::ElevationOfPrivilege);
    }

    #[test]
    fn labels_round_trip() {
        for s in Stride::ALL {
            assert_eq!(Stride::parse(s.label()), Some(s));
            assert_eq!(s.to_string(), s.label());
        }
    }

    #[test]
    fn mnemonics_and_aliases_parse() {
        assert_eq!(Stride::parse("S"), Some(Stride::Spoofing));
        assert_eq!(Stride::parse("dos"), Some(Stride::DenialOfService));
        assert_eq!(Stride::parse("eop"), Some(Stride::ElevationOfPrivilege));
        assert_eq!(
            Stride::parse("information-disclosure"),
            Some(Stride::InformationDisclosure)
        );
        assert_eq!(Stride::parse("bogus"), None);
    }
}
