//! Virtual time with picosecond resolution.
//!
//! Picoseconds are needed because the physical layer (UWB ranging, crate
//! `autosec-phy`) reasons about sub-nanosecond time-of-flight manipulation:
//! 1 m of distance corresponds to ~3.336 ns of one-way flight time, and the
//! attacks of Fig. 2 shift arrival estimates by fractions of that.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in picoseconds since the
/// start of the simulation.
///
/// `SimTime` is a transparent newtype ([C-NEWTYPE]) so that wall-clock and
/// simulated time can never be confused.
///
/// # Example
///
/// ```
/// use autosec_sim::{SimTime, SimDuration};
/// let t = SimTime::from_ms(1) + SimDuration::from_us(5);
/// assert_eq!(t.as_ps(), 1_005_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

macro_rules! time_ctors {
    ($ty:ident) => {
        impl $ty {
            /// Zero point.
            pub const ZERO: Self = Self(0);

            /// Constructs from raw picoseconds.
            pub const fn from_ps(ps: u64) -> Self {
                Self(ps)
            }

            /// Constructs from nanoseconds.
            pub const fn from_ns(ns: u64) -> Self {
                Self(ns * 1_000)
            }

            /// Constructs from microseconds.
            pub const fn from_us(us: u64) -> Self {
                Self(us * 1_000_000)
            }

            /// Constructs from milliseconds.
            pub const fn from_ms(ms: u64) -> Self {
                Self(ms * 1_000_000_000)
            }

            /// Constructs from seconds.
            pub const fn from_secs(s: u64) -> Self {
                Self(s * 1_000_000_000_000)
            }

            /// Raw picosecond count.
            pub const fn as_ps(self) -> u64 {
                self.0
            }

            /// Value in nanoseconds (fractional).
            pub fn as_ns_f64(self) -> f64 {
                self.0 as f64 / 1e3
            }

            /// Value in microseconds (fractional).
            pub fn as_us_f64(self) -> f64 {
                self.0 as f64 / 1e6
            }

            /// Value in milliseconds (fractional).
            pub fn as_ms_f64(self) -> f64 {
                self.0 as f64 / 1e9
            }

            /// Value in seconds (fractional).
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / 1e12
            }
        }
    };
}

time_ctors!(SimTime);
time_ctors!(SimDuration);

impl SimDuration {
    /// Builds a duration from a fractional nanosecond count, rounding to the
    /// nearest picosecond. Negative inputs clamp to zero.
    pub fn from_ns_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            return Self::ZERO;
        }
        Self((ns * 1e3).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by an integer factor.
    ///
    /// # Panics
    ///
    /// Panics on overflow in debug builds (standard integer semantics).
    pub fn times(self, n: u64) -> Self {
        Self(self.0 * n)
    }
}

impl SimTime {
    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating version of [`SimTime::since`]: returns zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == 0 {
        write!(f, "0s")
    } else if ps.is_multiple_of(1_000_000_000_000) {
        write!(f, "{}s", ps / 1_000_000_000_000)
    } else if ps.is_multiple_of(1_000_000_000) {
        write!(f, "{}ms", ps / 1_000_000_000)
    } else if ps.is_multiple_of(1_000_000) {
        write!(f, "{}us", ps / 1_000_000)
    } else if ps.is_multiple_of(1_000) {
        write!(f, "{}ns", ps / 1_000)
    } else {
        write!(f, "{ps}ps")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> Self {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_ns(500);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_is_exact() {
        let a = SimTime::from_ps(100);
        let b = SimTime::from_ps(350);
        assert_eq!(b.since(a).as_ps(), 250);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let a = SimTime::from_ps(100);
        let b = SimTime::from_ps(350);
        let _ = a.since(b);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_ps(100);
        let b = SimTime::from_ps(350);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2s");
        assert_eq!(SimTime::from_ms(5).to_string(), "5ms");
        assert_eq!(SimTime::from_ns(7).to_string(), "7ns");
        assert_eq!(SimTime::from_ps(3).to_string(), "3ps");
        assert_eq!(SimTime::ZERO.to_string(), "0s");
    }

    #[test]
    fn from_ns_f64_rounds() {
        assert_eq!(SimDuration::from_ns_f64(1.5).as_ps(), 1_500);
        assert_eq!(SimDuration::from_ns_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns_f64(0.0004).as_ps(), 0);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_us(4);
        assert_eq!(d * 2, SimDuration::from_us(8));
        assert_eq!(d / 2, SimDuration::from_us(2));
        assert_eq!(d.times(3), SimDuration::from_us(12));
    }
}
