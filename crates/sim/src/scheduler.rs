//! Event scheduler: a priority queue keyed by [`SimTime`] with stable FIFO
//! ordering for simultaneous events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break on insertion order (lower seq first) for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler.
///
/// Events scheduled for the same instant pop in insertion order, which keeps
/// multi-agent simulations reproducible regardless of heap internals.
///
/// # Example
///
/// ```
/// use autosec_sim::{Scheduler, SimTime};
///
/// let mut s = Scheduler::new();
/// s.schedule_at(SimTime::from_ns(10), 'b');
/// s.schedule_at(SimTime::from_ns(10), 'c');
/// s.schedule_at(SimTime::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past (before [`Scheduler::now`]) is allowed but the
    /// event fires "now"; this mirrors zero-delay self-messages common in
    /// network simulation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest pending event and advances the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "scheduler clock went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drains and discards every pending event, keeping the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Runs the scheduler to completion, calling `handler` for each event.
    /// The handler may schedule further events.
    ///
    /// Stops when the queue is empty or when `handler` returns `false`.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E) -> bool,
    {
        while let Some(entry) = self.heap.pop() {
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            if !handler(self, entry.at, entry.event) {
                break;
            }
        }
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are still delivered.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let (at, ev) = self.pop().expect("peeked event vanished");
            handler(self, at, ev);
        }
        self.now = self.now.max(deadline);
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_ns(30), 3);
        s.schedule_at(SimTime::from_ns(10), 1);
        s.schedule_at(SimTime::from_ns(20), 2);
        let got: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(SimTime::from_ns(5), i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_us(2), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_us(2));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_us(10), "first");
        s.pop();
        s.schedule_at(SimTime::from_us(1), "late-scheduled");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_us(10));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_us(5), 0u8);
        s.pop();
        s.schedule_in(SimDuration::from_us(3), 1u8);
        let (t, e) = s.pop().unwrap();
        assert_eq!(e, 1);
        assert_eq!(t, SimTime::from_us(8));
    }

    #[test]
    fn run_handler_can_reschedule() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_ns(1), 0u32);
        let mut seen = Vec::new();
        s.run(|s, t, ev| {
            seen.push(ev);
            if ev < 4 {
                s.schedule_at(t + SimDuration::from_ns(1), ev + 1);
            }
            true
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut s = Scheduler::new();
        for i in 1..=10u64 {
            s.schedule_at(SimTime::from_ns(i * 10), i);
        }
        let mut seen = Vec::new();
        s.run_until(SimTime::from_ns(50), |_, _, ev| seen.push(ev));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn run_stops_on_false() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::from_ns(i), i);
        }
        let mut count = 0;
        s.run(|_, _, _| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
        assert_eq!(s.len(), 7);
    }
}
