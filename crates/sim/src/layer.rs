//! The architectural layer stack of Fig. 1 — the one layer enum shared
//! by every crate in the workspace.
//!
//! It lives in `autosec-sim` (the base crate) so that both the
//! framework (`autosec-core`) and the cross-cutting defenses
//! (`autosec-ids`) can speak the same layer vocabulary without a lossy
//! mapping between near-duplicate enums.

use std::fmt;

/// The architectural layers of Fig. 1 (plus the collaboration layer of
/// §VII, which the paper treats as the layer above the system of
/// systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArchLayer {
    /// §II — sensors, UWB ranging, PKES.
    Physical,
    /// §III — CAN/Ethernet IVN and its security protocols.
    Network,
    /// §IV — software-defined vehicle, SSI trust fabric.
    SoftwarePlatform,
    /// §V — telemetry, cloud backends, privacy.
    Data,
    /// §VI — the MaaS system of systems.
    SystemOfSystems,
    /// §VII — collaborating autonomous systems.
    Collaboration,
}

impl ArchLayer {
    /// All layers, bottom-up (Fig. 1 order).
    pub const ALL: [ArchLayer; 6] = [
        ArchLayer::Physical,
        ArchLayer::Network,
        ArchLayer::SoftwarePlatform,
        ArchLayer::Data,
        ArchLayer::SystemOfSystems,
        ArchLayer::Collaboration,
    ];

    /// The paper section discussing this layer.
    pub fn paper_section(&self) -> &'static str {
        match self {
            ArchLayer::Physical => "II",
            ArchLayer::Network => "III",
            ArchLayer::SoftwarePlatform => "IV",
            ArchLayer::Data => "V",
            ArchLayer::SystemOfSystems => "VI",
            ArchLayer::Collaboration => "VII",
        }
    }
}

impl fmt::Display for ArchLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArchLayer::Physical => "physical",
            ArchLayer::Network => "network",
            ArchLayer::SoftwarePlatform => "software/platform",
            ArchLayer::Data => "data",
            ArchLayer::SystemOfSystems => "system-of-systems",
            ArchLayer::Collaboration => "collaboration",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_layers_in_order() {
        assert_eq!(ArchLayer::ALL.len(), 6);
        assert!(ArchLayer::Physical < ArchLayer::Collaboration);
        assert_eq!(ArchLayer::Physical.paper_section(), "II");
        assert_eq!(ArchLayer::Collaboration.paper_section(), "VII");
    }

    #[test]
    fn display_and_sections() {
        assert_eq!(ArchLayer::Network.to_string(), "network");
        assert_eq!(ArchLayer::Data.paper_section(), "V");
    }
}
