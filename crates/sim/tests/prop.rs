//! Property tests for the simulation kernel.

use autosec_sim::{percentile, Scheduler, SimDuration, SimRng, SimTime, Summary};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    /// Events pop in nondecreasing time order; ties preserve insertion
    /// order.
    #[test]
    fn scheduler_orders_any_schedule(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_ns(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = s.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for ties");
            }
        }
    }

    /// Time arithmetic round-trips.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_ps(t);
        let dur = SimDuration::from_ps(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur).since(time), dur);
    }

    /// Percentiles are bounded by the sample extremes and monotone in p.
    #[test]
    fn percentile_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            let v = percentile(&xs, p);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prop_assert!(v >= prev - 1e-9, "percentile must be monotone in p");
            prev = v;
        }
        prop_assert_eq!(percentile(&xs, 0.0), lo);
        prop_assert_eq!(percentile(&xs, 100.0), hi);
    }

    /// Summary invariants: min <= p50 <= p95 <= p99 <= max, mean within
    /// [min, max].
    #[test]
    fn summary_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
    }

    /// Forks are pure functions of (seed, label).
    #[test]
    fn rng_fork_label_stability(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let a = SimRng::seed(seed).fork(&label).next_u64();
        let b = SimRng::seed(seed).fork(&label).next_u64();
        prop_assert_eq!(a, b);
    }

    /// Chance(0) is never true; chance(1) always is.
    #[test]
    fn chance_extremes(seed in any::<u64>()) {
        let mut rng = SimRng::seed(seed);
        for _ in 0..32 {
            prop_assert!(!rng.chance(0.0));
            prop_assert!(rng.chance(1.0));
        }
    }
}
