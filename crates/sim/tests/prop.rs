//! Randomized invariant tests for the simulation kernel.
//!
//! Formerly proptest-based; now driven by deterministic [`SimRng`]
//! streams (the hermetic build has no proptest), with one forked
//! substream per case so failures reproduce exactly.

use autosec_sim::{percentile, Scheduler, SimDuration, SimRng, SimTime, Summary};
use rand::{Rng, RngCore};

const CASES: u64 = 64;

/// Events pop in nondecreasing time order; ties preserve insertion
/// order.
#[test]
fn scheduler_orders_any_schedule() {
    let root = SimRng::seed(0x5C_4ED);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let n = rng.gen_range(1usize..200);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_ns(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = s.pop() {
            popped.push((t, i));
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated for ties");
            }
        }
    }
}

/// Time arithmetic round-trips.
#[test]
fn time_add_sub_roundtrip() {
    let root = SimRng::seed(0x71_3E);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let t = rng.gen_range(0u64..u64::MAX / 4);
        let d = rng.gen_range(0u64..u64::MAX / 4);
        let time = SimTime::from_ps(t);
        let dur = SimDuration::from_ps(d);
        assert_eq!((time + dur) - dur, time);
        assert_eq!((time + dur).since(time), dur);
    }
}

fn sample(rng: &mut SimRng, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(min_len..max_len);
    (0..n).map(|_| rng.gen_range(-1e6f64..1e6)).collect()
}

/// Percentiles are bounded by the sample extremes and monotone in p.
#[test]
fn percentile_bounds() {
    let root = SimRng::seed(0x9C_71E);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let xs = sample(&mut rng, 1, 100);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            let v = percentile(&xs, p);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            assert!(v >= prev - 1e-9, "percentile must be monotone in p");
            prev = v;
        }
        assert_eq!(percentile(&xs, 0.0), lo);
        assert_eq!(percentile(&xs, 100.0), hi);
    }
}

/// Summary invariants: min <= p50 <= p95 <= p99 <= max, mean within
/// [min, max].
#[test]
fn summary_invariants() {
    let root = SimRng::seed(0x5_3A47);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let xs = sample(&mut rng, 2, 200);
        let s = Summary::of(&xs);
        assert!(s.min <= s.p50 + 1e-9);
        assert!(s.p50 <= s.p95 + 1e-9);
        assert!(s.p95 <= s.p99 + 1e-9);
        assert!(s.p99 <= s.max + 1e-9);
        assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        assert!(s.stddev >= 0.0);
    }
}

/// Forks are pure functions of (seed, label).
#[test]
fn rng_fork_label_stability() {
    let root = SimRng::seed(0xF0_4C);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let seed = rng.next_u64();
        let label: String = (0..rng.gen_range(1usize..12))
            .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
            .collect();
        let a = SimRng::seed(seed).fork(&label).next_u64();
        let b = SimRng::seed(seed).fork(&label).next_u64();
        assert_eq!(a, b);
    }
}

/// Chance(0) is never true; chance(1) always is.
#[test]
fn chance_extremes() {
    let root = SimRng::seed(0xC4A_4CE);
    for case in 0..CASES {
        let mut rng = root.fork_idx(case);
        let mut subject = SimRng::seed(rng.next_u64());
        for _ in 0..32 {
            assert!(!subject.chance(0.0));
            assert!(subject.chance(1.0));
        }
    }
}
