//! The system-of-systems graph model.

use std::collections::HashMap;

/// Fig. 9's system levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SystemLevel {
    /// Level 0: the MaaS platform viewed as one entity.
    L0Platform,
    /// Level 1: autonomous vehicle, backend, hub, MaaS platform.
    L1System,
    /// Level 2: vehicle OS, self-driving stack, passenger OS.
    L2Subsystem,
    /// Level 3: act/sense/plan and body functions.
    L3Function,
}

/// Kinds of externally reachable entry points (§VI-B: "multiple physical
/// and digital entry points, including sensor interfaces, in-vehicle
/// functions, and telematics connections").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryPointKind {
    /// Environmental sensor (camera, LiDAR, radar).
    Sensor,
    /// Cellular/telematics connectivity.
    Telematics,
    /// Physical access (diagnostic port, hub maintenance).
    Physical,
    /// V2X radio.
    V2x,
    /// Public API (booking, fleet management).
    Api,
    /// Human interface (passenger tablet, app).
    Hmi,
}

impl EntryPointKind {
    /// Relative exposure weight.
    pub fn weight(self) -> f64 {
        match self {
            EntryPointKind::Telematics | EntryPointKind::Api => 10.0,
            EntryPointKind::V2x => 6.0,
            EntryPointKind::Sensor => 5.0,
            EntryPointKind::Hmi => 4.0,
            EntryPointKind::Physical => 2.0,
        }
    }
}

/// Node identifier within a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// One system/subsystem/function in the SoS.
#[derive(Debug, Clone, PartialEq)]
pub struct SosNode {
    /// Name, e.g. `"self-driving-stack"`.
    pub name: String,
    /// Level in Fig. 9.
    pub level: SystemLevel,
    /// Responsible stakeholder, if clearly assigned (§VI-B's
    /// "ambiguous roles and responsibilities" = `None`).
    pub stakeholder: Option<String>,
    /// Externally reachable entry points on this node.
    pub entry_points: Vec<EntryPointKind>,
    /// Third-party component (§VI-B: inherent known/unknown vulns).
    pub third_party: bool,
    /// Legacy component lacking modern security features.
    pub legacy: bool,
}

impl SosNode {
    /// Base compromise susceptibility multiplier from provenance.
    pub fn susceptibility(&self) -> f64 {
        let mut s = 1.0;
        if self.third_party {
            s *= 1.5;
        }
        if self.legacy {
            s *= 2.0;
        }
        if self.stakeholder.is_none() {
            // Nobody owns patching/monitoring for this node.
            s *= 1.5;
        }
        s
    }
}

/// A directed coupling edge: compromise of `from` pressures `to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coupling {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Base traversal probability (0..1) for a capable attacker.
    pub strength: f64,
}

/// The SoS graph.
#[derive(Debug, Clone, Default)]
pub struct SosGraph {
    nodes: Vec<SosNode>,
    edges: Vec<Coupling>,
}

impl SosGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: SosNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a coupling edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node ids or a strength outside `[0, 1]`.
    pub fn couple(&mut self, from: NodeId, to: NodeId, strength: f64) {
        assert!(
            from.0 < self.nodes.len() && to.0 < self.nodes.len(),
            "bad node id"
        );
        assert!((0.0..=1.0).contains(&strength), "strength out of range");
        self.edges.push(Coupling { from, to, strength });
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> Option<&SosNode> {
        self.nodes.get(id.0)
    }

    /// Finds a node id by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// All nodes with ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &SosNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// All edges.
    pub fn edges(&self) -> &[Coupling] {
        &self.edges
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes at a given level.
    pub fn nodes_at(&self, level: SystemLevel) -> impl Iterator<Item = (NodeId, &SosNode)> {
        self.nodes().filter(move |(_, n)| n.level == level)
    }

    /// Total entry points across the SoS.
    pub fn total_entry_points(&self) -> usize {
        self.nodes.iter().map(|n| n.entry_points.len()).sum()
    }

    /// Aggregate attack-surface score (entry-point weights, scaled by
    /// node susceptibility).
    pub fn surface_score(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.susceptibility() * n.entry_points.iter().map(|e| e.weight()).sum::<f64>())
            .sum()
    }

    /// Fraction of nodes with a clearly assigned stakeholder — the
    /// responsibility-coverage metric of §VI-B.
    pub fn responsibility_coverage(&self) -> f64 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        self.nodes
            .iter()
            .filter(|n| n.stakeholder.is_some())
            .count() as f64
            / self.nodes.len() as f64
    }

    /// Distinct stakeholders involved.
    pub fn stakeholders(&self) -> Vec<String> {
        let mut set: HashMap<&str, ()> = HashMap::new();
        for n in &self.nodes {
            if let Some(s) = &n.stakeholder {
                set.insert(s, ());
            }
        }
        let mut v: Vec<String> = set.keys().map(|s| (*s).to_owned()).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, level: SystemLevel) -> SosNode {
        SosNode {
            name: name.into(),
            level,
            stakeholder: Some("oem".into()),
            entry_points: vec![EntryPointKind::Telematics],
            third_party: false,
            legacy: false,
        }
    }

    #[test]
    fn build_and_query() {
        let mut g = SosGraph::new();
        let a = g.add_node(node("vehicle", SystemLevel::L1System));
        let b = g.add_node(node("backend", SystemLevel::L1System));
        g.couple(a, b, 0.5);
        assert_eq!(g.len(), 2);
        assert_eq!(g.find("backend"), Some(b));
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.nodes_at(SystemLevel::L1System).count(), 2);
    }

    #[test]
    #[should_panic(expected = "strength out of range")]
    fn bad_strength_rejected() {
        let mut g = SosGraph::new();
        let a = g.add_node(node("a", SystemLevel::L0Platform));
        g.couple(a, a, 1.5);
    }

    #[test]
    fn susceptibility_multipliers() {
        let clean = node("a", SystemLevel::L2Subsystem);
        assert_eq!(clean.susceptibility(), 1.0);
        let mut third = clean.clone();
        third.third_party = true;
        assert_eq!(third.susceptibility(), 1.5);
        let mut worst = third.clone();
        worst.legacy = true;
        worst.stakeholder = None;
        assert_eq!(worst.susceptibility(), 4.5);
    }

    #[test]
    fn coverage_metric() {
        let mut g = SosGraph::new();
        g.add_node(node("a", SystemLevel::L1System));
        let mut orphan = node("b", SystemLevel::L1System);
        orphan.stakeholder = None;
        g.add_node(orphan);
        assert_eq!(g.responsibility_coverage(), 0.5);
    }

    #[test]
    fn surface_score_weights_susceptibility() {
        let mut g1 = SosGraph::new();
        g1.add_node(node("a", SystemLevel::L1System));
        let mut g2 = SosGraph::new();
        let mut n = node("a", SystemLevel::L1System);
        n.legacy = true;
        g2.add_node(n);
        assert!(g2.surface_score() > g1.surface_score());
    }

    #[test]
    fn stakeholder_list_deduplicates() {
        let mut g = SosGraph::new();
        g.add_node(node("a", SystemLevel::L1System));
        g.add_node(node("b", SystemLevel::L1System));
        assert_eq!(g.stakeholders(), vec!["oem".to_owned()]);
    }
}
