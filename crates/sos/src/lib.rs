//! # autosec-sos
//!
//! System-of-systems layer — §VI of the paper (Fig. 9): SAE L4
//! autonomous vehicles operated as Mobility-as-a-Service.
//!
//! - [`model`] — the multi-level SoS graph: nodes at levels 0–3, typed
//!   entry points, stakeholder ownership, third-party / legacy flags,
//!   coupling edges
//! - [`mod@reference`] — the Fig. 9 reference architecture builder
//! - [`cascade`] — breach propagation: "a security breach in one
//!   subsystem can trigger a cascade of risks, potentially compromising
//!   the entire system of systems"
//! - [`realtime`] — DoS/spoofing pressure on the real-time data links
//!   autonomous operation depends on
//!
//! ## Example
//!
//! ```
//! use autosec_sos::reference::maas_reference;
//! use autosec_sos::model::SystemLevel;
//!
//! let sos = maas_reference();
//! assert!(sos.nodes_at(SystemLevel::L3Function).count() >= 6);
//! assert!(sos.total_entry_points() > 10);
//! ```

pub mod cascade;
pub mod faults;
pub mod model;
pub mod realtime;
pub mod reference;
