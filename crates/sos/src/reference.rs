//! The Fig. 9 reference architecture: "SAE L4 Autonomous Vehicles MaaS
//! System of Systems".

use crate::model::{EntryPointKind, SosGraph, SosNode, SystemLevel};

fn n(
    name: &str,
    level: SystemLevel,
    stakeholder: Option<&str>,
    entry_points: &[EntryPointKind],
    third_party: bool,
    legacy: bool,
) -> SosNode {
    SosNode {
        name: name.into(),
        level,
        stakeholder: stakeholder.map(str::to_owned),
        entry_points: entry_points.to_vec(),
        third_party,
        legacy,
    }
}

/// Builds the Fig. 9 architecture with its coupling edges.
///
/// Level 0: the MaaS platform as a whole. Level 1: autonomous vehicle,
/// cloud & backend, hub infrastructure, MaaS platform. Level 2 (inside
/// the vehicle): vehicle OS, self-driving stack, passenger OS. Level 3:
/// act / sense / plan plus body functions. The retrofit pattern the
/// paper mentions (Waymo + Chrysler) shows up as the legacy vehicle OS
/// with third-party self-driving stack.
pub fn maas_reference() -> SosGraph {
    use EntryPointKind::*;
    use SystemLevel::*;

    let mut g = SosGraph::new();

    let platform = g.add_node(n("maas-sos", L0Platform, None, &[], false, false));

    let vehicle = g.add_node(n(
        "autonomous-vehicle",
        L1System,
        Some("vehicle-operator"),
        &[Physical, V2x],
        false,
        false,
    ));
    let backend = g.add_node(n(
        "cloud-backend",
        L1System,
        Some("backend-operator"),
        &[Api, Telematics],
        false,
        false,
    ));
    let hub = g.add_node(n(
        "hub-infrastructure",
        L1System,
        Some("hub-operator"),
        &[Physical, Api],
        false,
        true, // depots run legacy IT
    ));
    let maas = g.add_node(n(
        "maas-platform",
        L1System,
        Some("maas-operator"),
        &[Api, Hmi],
        true, // white-label platform software
        false,
    ));

    let vehicle_os = g.add_node(n(
        "vehicle-os",
        L2Subsystem,
        Some("oem"),
        &[Physical],
        false,
        true, // retrofitted legacy vehicle platform
    ));
    let sds = g.add_node(n(
        "self-driving-stack",
        L2Subsystem,
        Some("ad-developer"),
        &[Sensor, Sensor, Sensor], // camera, lidar, radar
        true,
        false,
    ));
    let passenger_os = g.add_node(n(
        "passenger-os",
        L2Subsystem,
        None, // the paper's responsibility gap: operator or developer?
        &[Hmi, Telematics],
        true,
        false,
    ));

    let act = g.add_node(n("act", L3Function, Some("oem"), &[], false, true));
    let sense = g.add_node(n(
        "sense",
        L3Function,
        Some("ad-developer"),
        &[Sensor],
        true,
        false,
    ));
    let plan = g.add_node(n(
        "plan",
        L3Function,
        Some("ad-developer"),
        &[],
        true,
        false,
    ));
    let braking = g.add_node(n("braking", L3Function, Some("oem"), &[], false, true));
    let steering = g.add_node(n("steering", L3Function, Some("oem"), &[], false, true));
    let comfort = g.add_node(n(
        "climate-seating",
        L3Function,
        Some("oem"),
        &[],
        false,
        true,
    ));

    // Level-1 backbone couplings (telematics / API paths).
    g.couple(maas, backend, 0.5);
    g.couple(backend, vehicle, 0.45);
    g.couple(hub, vehicle, 0.3);
    g.couple(platform, maas, 0.2);
    g.couple(maas, platform, 0.2);

    // Vehicle internal structure: shared compute and gateways (§VI-B:
    // "built on shared onboard computing hardware").
    g.couple(vehicle, passenger_os, 0.5);
    g.couple(vehicle, vehicle_os, 0.4);
    g.couple(vehicle, sds, 0.4);
    g.couple(passenger_os, vehicle_os, 0.35);
    g.couple(passenger_os, sds, 0.25);
    g.couple(sds, vehicle_os, 0.45);

    // Level 2 -> 3.
    g.couple(vehicle_os, act, 0.6);
    g.couple(vehicle_os, braking, 0.55);
    g.couple(vehicle_os, steering, 0.55);
    g.couple(vehicle_os, comfort, 0.5);
    g.couple(sds, sense, 0.6);
    g.couple(sds, plan, 0.6);
    g.couple(plan, act, 0.5);

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_has_four_levels() {
        let g = maas_reference();
        assert_eq!(g.nodes_at(SystemLevel::L0Platform).count(), 1);
        assert_eq!(g.nodes_at(SystemLevel::L1System).count(), 4);
        assert_eq!(g.nodes_at(SystemLevel::L2Subsystem).count(), 3);
        assert_eq!(g.nodes_at(SystemLevel::L3Function).count(), 6);
    }

    #[test]
    fn has_the_papers_responsibility_gap() {
        let g = maas_reference();
        let cov = g.responsibility_coverage();
        assert!(cov < 1.0, "the passenger OS is unowned");
        assert!(cov > 0.7);
    }

    #[test]
    fn multiple_stakeholders() {
        let g = maas_reference();
        // §VI: hub operators, MaaS platform operators, backend operators,
        // vehicle manufacturers, AD developer, operator...
        assert!(g.stakeholders().len() >= 5, "{:?}", g.stakeholders());
    }

    #[test]
    fn safety_functions_have_no_direct_entry_points() {
        let g = maas_reference();
        for name in ["braking", "steering", "act"] {
            let id = g.find(name).unwrap();
            assert!(
                g.node(id).unwrap().entry_points.is_empty(),
                "{name} is only reachable through cascades"
            );
        }
    }

    #[test]
    fn surface_is_dominated_by_connected_systems() {
        let g = maas_reference();
        assert!(g.surface_score() > 50.0);
        assert!(g.total_entry_points() > 10);
    }
}
