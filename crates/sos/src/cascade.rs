//! Breach-cascade analysis (§VI-B): Monte-Carlo propagation of a
//! compromise through the coupling graph.
//!
//! Edge traversal succeeds with probability
//! `strength * min(target.susceptibility(), cap) / cap_norm` — i.e.
//! third-party, legacy and ownerless targets are easier to pivot into,
//! exactly the §VI-B vulnerability factors.

use std::collections::VecDeque;

use autosec_sim::SimRng;

use crate::model::{NodeId, SosGraph};

/// Result of a cascade study.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeReport {
    /// Entry node.
    pub entry: NodeId,
    /// Per-node compromise probability (index = NodeId.0).
    pub compromise_probability: Vec<f64>,
    /// Expected number of compromised nodes.
    pub expected_compromised: f64,
    /// Probability that at least one L3 safety function
    /// (braking/steering/act) is reached.
    pub safety_reach_probability: f64,
}

/// Compromise mask of one Monte-Carlo cascade from `entry`.
///
/// One trial = one BFS with randomized edge traversal. Trials are
/// independent, so a sweep can run them on any RNG streams it likes
/// (e.g. one [`SimRng::fork_idx`] stream per trial in a parallel run)
/// and fold the masks into a [`CascadeAccumulator`].
///
/// # Panics
///
/// Panics if `entry` is out of range.
pub fn cascade_trial(graph: &SosGraph, entry: NodeId, rng: &mut SimRng) -> Vec<bool> {
    assert!(graph.node(entry).is_some(), "entry node out of range");
    let mut compromised = vec![false; graph.len()];
    compromised[entry.0] = true;
    let mut queue = VecDeque::from([entry]);
    while let Some(cur) = queue.pop_front() {
        for e in graph.edges().iter().filter(|e| e.from == cur) {
            if compromised[e.to.0] {
                continue;
            }
            let target = graph.node(e.to).expect("edge target exists");
            // Susceptibility in [1, 4.5] rescaled to a multiplier in
            // (0, 1]: p = strength * susceptibility / 4.5 capped at
            // strength itself for clean nodes? No — normalize so a
            // clean node traverses at strength/2 and the worst node
            // at strength.
            let p = e.strength * (0.5 + 0.5 * (target.susceptibility() - 1.0) / 3.5);
            if rng.chance(p.min(1.0)) {
                compromised[e.to.0] = true;
                queue.push_back(e.to);
            }
        }
    }
    compromised
}

/// Mergeable per-node hit counts over many cascade trials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeAccumulator {
    safety: Vec<NodeId>,
    hits: Vec<usize>,
    safety_hits: usize,
    trials: usize,
}

impl CascadeAccumulator {
    /// An empty accumulator for `graph` (resolves the safety-function
    /// node set once).
    pub fn new(graph: &SosGraph) -> Self {
        Self {
            safety: ["braking", "steering", "act"]
                .iter()
                .filter_map(|s| graph.find(s))
                .collect(),
            hits: vec![0; graph.len()],
            safety_hits: 0,
            trials: 0,
        }
    }

    /// Folds one trial's compromise mask in.
    pub fn add(&mut self, compromised: &[bool]) {
        assert_eq!(compromised.len(), self.hits.len(), "graph size mismatch");
        for (h, &c) in self.hits.iter_mut().zip(compromised) {
            *h += usize::from(c);
        }
        if self.safety.iter().any(|s| compromised[s.0]) {
            self.safety_hits += 1;
        }
        self.trials += 1;
    }

    /// Merges another accumulator (counts add; both must come from the
    /// same graph).
    pub fn merge(&mut self, other: &CascadeAccumulator) {
        assert_eq!(other.hits.len(), self.hits.len(), "graph size mismatch");
        for (h, o) in self.hits.iter_mut().zip(&other.hits) {
            *h += o;
        }
        self.safety_hits += other.safety_hits;
        self.trials += other.trials;
    }

    /// Trials folded in so far.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Finalizes into a report.
    ///
    /// # Panics
    ///
    /// Panics if no trial was folded in.
    pub fn report(&self, entry: NodeId) -> CascadeReport {
        assert!(self.trials > 0, "need at least one trial");
        let compromise_probability: Vec<f64> = self
            .hits
            .iter()
            .map(|&h| h as f64 / self.trials as f64)
            .collect();
        CascadeReport {
            entry,
            expected_compromised: compromise_probability.iter().sum(),
            safety_reach_probability: self.safety_hits as f64 / self.trials as f64,
            compromise_probability,
        }
    }
}

/// Runs `trials` Monte-Carlo cascades from `entry`.
///
/// # Panics
///
/// Panics if `entry` is out of range or `trials` is zero.
pub fn simulate(graph: &SosGraph, entry: NodeId, trials: usize, rng: &mut SimRng) -> CascadeReport {
    assert!(trials > 0, "need at least one trial");
    let mut acc = CascadeAccumulator::new(graph);
    for _ in 0..trials {
        let mask = cascade_trial(graph, entry, rng);
        acc.add(&mask);
    }
    acc.report(entry)
}

/// Uniformly rescales every coupling strength (used by the E10 sweep:
/// cascade risk versus coupling).
pub fn with_coupling_scale(graph: &SosGraph, scale: f64) -> SosGraph {
    let mut out = SosGraph::new();
    for (_, node) in graph.nodes() {
        out.add_node(node.clone());
    }
    for e in graph.edges() {
        out.couple(e.from, e.to, (e.strength * scale).clamp(0.0, 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::maas_reference;

    #[test]
    fn entry_node_is_always_compromised() {
        let g = maas_reference();
        let entry = g.find("maas-platform").unwrap();
        let mut rng = SimRng::seed(1);
        let r = simulate(&g, entry, 200, &mut rng);
        assert_eq!(r.compromise_probability[entry.0], 1.0);
        assert!(r.expected_compromised >= 1.0);
    }

    #[test]
    fn cascade_reaches_safety_functions_from_the_platform() {
        // The paper's core SoS worry: an entry at the *service* level can
        // propagate down to braking/steering.
        let g = maas_reference();
        let entry = g.find("maas-platform").unwrap();
        let mut rng = SimRng::seed(2);
        let r = simulate(&g, entry, 2000, &mut rng);
        assert!(
            r.safety_reach_probability > 0.0,
            "cascades must be able to reach safety functions"
        );
        assert!(
            r.safety_reach_probability < 0.5,
            "but it takes a multi-hop chain ({})",
            r.safety_reach_probability
        );
    }

    #[test]
    fn closer_entry_means_higher_safety_risk() {
        let g = maas_reference();
        let mut rng = SimRng::seed(3);
        let far = simulate(&g, g.find("maas-platform").unwrap(), 2000, &mut rng);
        let near = simulate(&g, g.find("vehicle-os").unwrap(), 2000, &mut rng);
        assert!(near.safety_reach_probability > far.safety_reach_probability);
    }

    #[test]
    fn coupling_scale_monotonically_increases_risk() {
        let g = maas_reference();
        let entry = g.find("cloud-backend").unwrap();
        let mut prev = -1.0;
        for scale in [0.5, 1.0, 1.5, 2.0] {
            let scaled = with_coupling_scale(&g, scale);
            let mut rng = SimRng::seed(4);
            let r = simulate(&scaled, entry, 1500, &mut rng);
            assert!(
                r.expected_compromised >= prev,
                "scale {scale}: {} < {prev}",
                r.expected_compromised
            );
            prev = r.expected_compromised;
        }
    }

    #[test]
    fn zero_coupling_confines_the_breach() {
        let g = with_coupling_scale(&maas_reference(), 0.0);
        let entry = g.find("cloud-backend").unwrap();
        let mut rng = SimRng::seed(5);
        let r = simulate(&g, entry, 300, &mut rng);
        assert_eq!(r.expected_compromised, 1.0);
        assert_eq!(r.safety_reach_probability, 0.0);
    }

    #[test]
    fn accumulator_merge_equals_single_pass() {
        let g = maas_reference();
        let entry = g.find("cloud-backend").unwrap();
        let trials = 400;
        // Single pass.
        let mut whole = CascadeAccumulator::new(&g);
        for i in 0..trials {
            let mut rng = SimRng::seed(77).fork_idx(i);
            whole.add(&cascade_trial(&g, entry, &mut rng));
        }
        // Two partitions merged.
        let mut left = CascadeAccumulator::new(&g);
        let mut right = CascadeAccumulator::new(&g);
        for i in 0..trials {
            let mut rng = SimRng::seed(77).fork_idx(i);
            let mask = cascade_trial(&g, entry, &mut rng);
            if i % 2 == 0 {
                left.add(&mask);
            } else {
                right.add(&mask);
            }
        }
        left.merge(&right);
        assert_eq!(left.trials(), whole.trials());
        assert_eq!(left.report(entry), whole.report(entry));
    }

    #[test]
    #[should_panic(expected = "entry node out of range")]
    fn bad_entry_panics() {
        let g = maas_reference();
        let mut rng = SimRng::seed(6);
        let _ = simulate(&g, NodeId(999), 10, &mut rng);
    }
}
