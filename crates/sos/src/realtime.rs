//! Real-time data under DoS/spoofing pressure (§VI-B: "Real-time data,
//! which is crucial for autonomous vehicle operations, is highly
//! susceptible to spoofing and denial-of-service (DoS) attacks").
//!
//! An M/D/1-style model of a real-time message stream sharing a link
//! with attacker flood traffic: utilisation drives queueing delay, and
//! messages missing their deadline are lost to the control loop.

use autosec_sim::SimRng;

/// A periodic real-time stream on a shared link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealtimeLink {
    /// Link capacity in messages per second.
    pub capacity_msgs_per_s: f64,
    /// Legitimate load in messages per second.
    pub legit_msgs_per_s: f64,
    /// Deadline per message, in milliseconds.
    pub deadline_ms: f64,
    /// Service time per message, in milliseconds.
    pub service_ms: f64,
}

impl RealtimeLink {
    /// A 100 Hz control stream on a link with 10x headroom.
    pub fn control_stream() -> Self {
        Self {
            capacity_msgs_per_s: 1000.0,
            legit_msgs_per_s: 100.0,
            deadline_ms: 20.0,
            service_ms: 1.0,
        }
    }

    /// Link utilisation with `attack_msgs_per_s` of flood traffic.
    pub fn utilisation(&self, attack_msgs_per_s: f64) -> f64 {
        (self.legit_msgs_per_s + attack_msgs_per_s) / self.capacity_msgs_per_s
    }

    /// Expected waiting time (ms) under the M/D/1 approximation
    /// `W = ρ·s / (2(1-ρ))`; saturated links return infinity.
    pub fn expected_wait_ms(&self, attack_msgs_per_s: f64) -> f64 {
        let rho = self.utilisation(attack_msgs_per_s);
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        rho * self.service_ms / (2.0 * (1.0 - rho))
    }

    /// Whether one message misses its deadline — the per-message trial
    /// behind [`Self::deadline_miss_rate`], exposed so harnesses can fan
    /// messages out over independent per-trial streams. Saturated links
    /// miss without consuming randomness.
    pub fn message_misses_deadline(&self, attack_msgs_per_s: f64, rng: &mut SimRng) -> bool {
        let mean_wait = self.expected_wait_ms(attack_msgs_per_s);
        if !mean_wait.is_finite() {
            return true;
        }
        if mean_wait <= 0.0 {
            return false;
        }
        let wait = rng.exponential(1.0 / mean_wait);
        wait + self.service_ms > self.deadline_ms
    }

    /// Monte-Carlo deadline-miss rate over `n` messages: exponential
    /// queue-wait approximation around the analytic mean.
    pub fn deadline_miss_rate(&self, attack_msgs_per_s: f64, n: usize, rng: &mut SimRng) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let missed = (0..n)
            .filter(|_| self.message_misses_deadline(attack_msgs_per_s, rng))
            .count();
        missed as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unattacked_link_meets_deadlines() {
        let link = RealtimeLink::control_stream();
        let mut rng = SimRng::seed(1);
        let miss = link.deadline_miss_rate(0.0, 5000, &mut rng);
        assert!(miss < 0.01, "{miss}");
    }

    #[test]
    fn saturation_kills_the_stream() {
        let link = RealtimeLink::control_stream();
        let mut rng = SimRng::seed(2);
        assert_eq!(link.deadline_miss_rate(950.0, 100, &mut rng), 1.0);
        assert!(link.expected_wait_ms(900.0).is_infinite());
    }

    #[test]
    fn miss_rate_rises_with_attack_intensity() {
        let link = RealtimeLink::control_stream();
        let mut prev = -1.0;
        for attack in [0.0, 400.0, 700.0, 850.0] {
            let mut rng = SimRng::seed(3);
            let m = link.deadline_miss_rate(attack, 4000, &mut rng);
            assert!(m >= prev, "attack {attack}: {m} < {prev}");
            prev = m;
        }
        assert!(prev > 0.05, "heavy flood should cause real misses: {prev}");
    }

    #[test]
    fn per_message_trial_matches_batch_rate() {
        // The batch rate is exactly the mean of per-message trials on
        // the same stream.
        let link = RealtimeLink::control_stream();
        let batch = link.deadline_miss_rate(700.0, 500, &mut SimRng::seed(9));
        let mut rng = SimRng::seed(9);
        let singles = (0..500)
            .filter(|_| link.message_misses_deadline(700.0, &mut rng))
            .count();
        assert_eq!(batch, singles as f64 / 500.0);
        // Saturation decides without touching the rng.
        let mut a = SimRng::seed(4).fork("sat");
        assert!(link.message_misses_deadline(950.0, &mut a));
        use rand::RngCore;
        assert_eq!(a.next_u64(), SimRng::seed(4).fork("sat").next_u64());
    }

    #[test]
    fn wait_formula_sanity() {
        let link = RealtimeLink::control_stream();
        // ρ = 0.1 → W = 0.1*1/(2*0.9) ≈ 0.056 ms.
        let w = link.expected_wait_ms(0.0);
        assert!((w - 0.0556).abs() < 0.01, "{w}");
    }
}
