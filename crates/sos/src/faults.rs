//! System-of-systems fault-injection adapter for `autosec-faults`.
//!
//! [`GraphFaultTarget`] fails coupling links of the Fig. 9 MaaS
//! reference architecture with a per-link probability and measures how
//! many level-3 vehicle functions remain reachable from the
//! level-0 platform — the SoS-scale service level. A defended operator
//! monitors its links and notices any outage.

use autosec_sim::inject::{FaultEffect, FaultTarget, InjectionRecord};
use autosec_sim::{ArchLayer, SimRng};

use crate::model::{NodeId, SosGraph, SystemLevel};
use crate::reference::maas_reference;

/// The MaaS reference graph under link-failure faults.
#[derive(Debug, Clone, Default)]
pub struct GraphFaultTarget;

/// Level-3 functions reachable from the L0 platform over `alive` edges.
fn reachable_functions(g: &SosGraph, alive: &[bool]) -> usize {
    let root = match g.nodes_at(SystemLevel::L0Platform).next() {
        Some((id, _)) => id,
        None => return 0,
    };
    let mut seen = vec![false; g.len()];
    let mut stack = vec![root];
    seen[root.0] = true;
    while let Some(n) = stack.pop() {
        for (i, e) in g.edges().iter().enumerate() {
            if alive[i] && e.from == n && !seen[e.to.0] {
                seen[e.to.0] = true;
                stack.push(e.to);
            }
        }
    }
    g.nodes_at(SystemLevel::L3Function)
        .filter(|(NodeId(i), _)| seen[*i])
        .count()
}

impl FaultTarget for GraphFaultTarget {
    fn layer(&self) -> ArchLayer {
        ArchLayer::SystemOfSystems
    }

    fn name(&self) -> &'static str {
        "sos-graph"
    }

    fn apply(
        &mut self,
        effects: &[FaultEffect],
        defended: bool,
        rng: &mut SimRng,
    ) -> InjectionRecord {
        let fail_p = effects
            .iter()
            .map(|e| match *e {
                FaultEffect::FailLinks { p } => p,
                _ => 0.0,
            })
            .fold(0.0f64, f64::max);
        if fail_p <= 0.0 {
            return InjectionRecord::clean(self.layer(), self.name());
        }

        let g = maas_reference();
        let baseline = reachable_functions(&g, &vec![true; g.edges().len()]);
        let alive: Vec<bool> = g.edges().iter().map(|_| !rng.chance(fail_p)).collect();
        let dropped = alive.iter().filter(|&&a| !a).count();
        let reachable = reachable_functions(&g, &alive);
        let health = if baseline == 0 {
            1.0
        } else {
            reachable as f64 / baseline as f64
        };
        InjectionRecord {
            layer: self.layer(),
            target: self.name(),
            applied: true,
            health,
            detected: defended && dropped > 0,
            detail: format!(
                "{dropped}/{} links down, {reachable}/{baseline} functions reachable",
                alive.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(effects: &[FaultEffect], defended: bool) -> InjectionRecord {
        let mut t = GraphFaultTarget;
        let mut rng = SimRng::seed(61).fork("sos-fault");
        t.apply(effects, defended, &mut rng)
    }

    #[test]
    fn no_effects_is_clean() {
        let rec = apply(&[], true);
        assert_eq!(
            rec,
            InjectionRecord::clean(ArchLayer::SystemOfSystems, "sos-graph")
        );
    }

    #[test]
    fn baseline_reaches_every_function() {
        let g = maas_reference();
        let all = reachable_functions(&g, &vec![true; g.edges().len()]);
        assert_eq!(all, g.nodes_at(SystemLevel::L3Function).count());
    }

    #[test]
    fn total_link_failure_strands_all_functions() {
        let rec = apply(&[FaultEffect::FailLinks { p: 1.0 }], true);
        assert_eq!(rec.health, 0.0);
        assert!(rec.detected);
    }

    #[test]
    fn partial_failure_degrades_monotonically_in_expectation() {
        let light = apply(&[FaultEffect::FailLinks { p: 0.1 }], false);
        let heavy = apply(&[FaultEffect::FailLinks { p: 0.8 }], false);
        assert!(
            light.health >= heavy.health,
            "{} vs {}",
            light.health,
            heavy.health
        );
        assert!(!heavy.detected, "undefended operator is blind");
    }

    #[test]
    fn deterministic_per_substream() {
        let a = apply(&[FaultEffect::FailLinks { p: 0.3 }], true);
        let b = apply(&[FaultEffect::FailLinks { p: 0.3 }], true);
        assert_eq!(a, b);
    }
}
