//! A work-stealing thread pool over indexed tasks.
//!
//! The pool executes tasks `0..n` across `jobs` workers. Each worker
//! owns a deque preloaded with a contiguous slice of the index range;
//! it drains its own deque from the front and, when empty, steals from
//! the *back* of a victim's deque (classic Chase–Lev discipline, here
//! with mutex-guarded deques — the workloads are Monte-Carlo trials
//! that dwarf the lock cost).
//!
//! Task indices say nothing about *where* a task runs, only *what* it
//! computes, so callers that key all per-task state off the index (as
//! [`par_trials`](crate::par_trials) does with `fork_idx`) get
//! scheduling-independent results for free.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A pool executing indexed task sets across a fixed worker count.
#[derive(Debug, Clone, Copy)]
pub struct WorkStealingPool {
    jobs: usize,
}

impl WorkStealingPool {
    /// A pool with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `task(i)` for every `i` in `0..n` and returns the number of
    /// tasks each worker executed (length = worker count).
    ///
    /// With one worker the tasks run on the calling thread, in index
    /// order, with zero synchronization — the `--jobs 1` baseline is
    /// the plain serial loop.
    ///
    /// # Panics
    ///
    /// A panicking task does not poison the pool and does not stop the
    /// other tasks: every index is still attempted, and afterwards the
    /// **original payload of the lowest-index panicking task** is
    /// re-thrown via [`resume_unwind`] — identical behavior for every
    /// worker count, never a generic "a scoped thread panicked".
    pub fn execute<F>(&self, n: usize, task: F) -> Vec<usize>
    where
        F: Fn(usize) + Sync,
    {
        // First panic payload, keyed by the lowest task index so the
        // choice is scheduling-independent.
        let first_panic: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);
        let run = |i: usize| {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut slot = first_panic.lock().unwrap_or_else(PoisonError::into_inner);
                if slot.as_ref().is_none_or(|(idx, _)| i < *idx) {
                    *slot = Some((i, payload));
                }
            }
        };

        let counts = if self.jobs == 1 || n <= 1 {
            for i in 0..n {
                run(i);
            }
            vec![n]
        } else {
            let workers = self.jobs.min(n);
            // Preload each deque with a contiguous chunk of the range.
            let chunk = n.div_ceil(workers);
            let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
                .map(|w| Mutex::new((w * chunk..((w + 1) * chunk).min(n)).collect()))
                .collect();
            let executed: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();

            std::thread::scope(|scope| {
                for w in 0..workers {
                    let deques = &deques;
                    let executed = &executed;
                    let run = &run;
                    scope.spawn(move || {
                        loop {
                            // Own queue first (front: cache-warm order)...
                            let own = deques[w]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .pop_front();
                            let idx = match own {
                                Some(i) => i,
                                // ...then steal from the back of a victim.
                                None => match Self::steal(deques, w) {
                                    Some(i) => i,
                                    None => break,
                                },
                            };
                            run(idx);
                            executed[w].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });

            executed.into_iter().map(|c| c.into_inner()).collect()
        };

        if let Some((_, payload)) = first_panic
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            resume_unwind(payload);
        }
        counts
    }

    /// Steals one index from any non-empty victim deque.
    fn steal(deques: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<usize> {
        let n = deques.len();
        for off in 1..n {
            let victim = (thief + off) % n;
            if let Some(idx) = deques[victim]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
            {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_every_index_exactly_once() {
        for jobs in [1, 2, 4, 7] {
            let n = 103;
            let seen: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let counts = WorkStealingPool::new(jobs).execute(n, |i| {
                seen[i].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counts.iter().sum::<usize>(), n, "jobs={jobs}");
            for (i, s) in seen.iter().enumerate() {
                assert_eq!(s.load(Ordering::Relaxed), 1, "index {i} at jobs={jobs}");
            }
        }
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // First half of the indices is much heavier; with stealing no
        // worker can end up with zero tasks while others are loaded.
        let n = 64;
        let counts = WorkStealingPool::new(4).execute(n, |i| {
            let reps = if i < n / 2 { 20_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..reps {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
        });
        assert_eq!(counts.iter().sum::<usize>(), n);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let counts = WorkStealingPool::new(16).execute(3, |_| {});
        assert_eq!(counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let counts = WorkStealingPool::new(4).execute(0, |_| panic!("no tasks"));
        assert_eq!(counts.iter().sum::<usize>(), 0);
    }

    #[test]
    fn jobs_clamped() {
        assert_eq!(WorkStealingPool::new(0).jobs(), 1);
    }

    #[test]
    fn panic_payload_propagates_verbatim() {
        // The original payload must survive — not "slot poisoned" or
        // "a scoped thread panicked" — and every other index must
        // still have executed, for any worker count.
        let _quiet = crate::par::silence_panics();
        for jobs in [1, 4] {
            let n = 40;
            let seen: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                WorkStealingPool::new(jobs).execute(n, |i| {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                    if i == 13 {
                        panic!("task 13 exploded");
                    }
                })
            }))
            .expect_err("must propagate");
            let msg = crate::par::panic_message(err.as_ref());
            assert_eq!(msg, "task 13 exploded", "jobs={jobs}");
            for (i, s) in seen.iter().enumerate() {
                assert_eq!(
                    s.load(Ordering::Relaxed),
                    1,
                    "index {i} skipped at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn lowest_index_panic_wins_regardless_of_schedule() {
        let _quiet = crate::par::silence_panics();
        for jobs in [1, 2, 8] {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                WorkStealingPool::new(jobs).execute(64, |i| {
                    if i % 9 == 4 {
                        panic!("boom {i}");
                    }
                })
            }))
            .expect_err("must propagate");
            assert_eq!(
                crate::par::panic_message(err.as_ref()),
                "boom 4",
                "jobs={jobs}"
            );
        }
    }
}
