//! Run manifest and per-experiment JSON artifacts.
//!
//! A run writes one `<slug>.json` per **completed** experiment plus a
//! `manifest.json` tying them together. Every field except
//! `duration_ms` is a pure function of `(seed, experiment)`, so two
//! artifacts from the same seed compare equal once the duration key is
//! dropped — the property the determinism tests check.
//!
//! With the fault-tolerant suite runner, a manifest entry is no longer
//! always a success: each carries a [`RunStatus`] (`ok`, `failed`,
//! `timed_out`, `oom_killed`, `cpu_exceeded`, or `skipped`), failed
//! entries record the panic message, budget kills record the observed
//! peak RSS / CPU seconds against the limit, and [`ResumeState`] reads
//! a prior manifest back so `--resume` can re-run only the failures
//! and gaps — killed and budget-exceeded entries are all retryable.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use serde_json::Value;

use crate::table::{sorted_object, Table};

/// The default artifact directory, relative to the workspace root.
pub const DEFAULT_ARTIFACT_DIR: &str = "target/experiments";

/// How one experiment ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// Completed and produced its table.
    Ok,
    /// Panicked; the rendered panic payload.
    Failed {
        /// The panic message recorded in the manifest.
        message: String,
    },
    /// Exceeded its soft deadline.
    TimedOut {
        /// The deadline that was in force.
        deadline: Duration,
        /// In-process fallback only: the overtime worker thread was
        /// still running when the suite moved on (Rust cannot kill a
        /// thread, so it leaks until process exit). Always `false`
        /// under `--isolate on`, where the child is SIGKILLed for
        /// real.
        detached: bool,
    },
    /// Killed for crossing its peak-RSS budget (`--isolate on` only).
    OomKilled {
        /// Peak resident set observed before the kill (MiB).
        peak_rss_mb: u64,
        /// The budget in force (MiB).
        limit_mb: u64,
    },
    /// Killed for crossing its CPU-seconds budget (`--isolate on`
    /// only).
    CpuExceeded {
        /// CPU seconds observed before the kill.
        cpu_secs: f64,
        /// The budget in force (seconds).
        limit_secs: u64,
    },
    /// Skipped under `--resume`: the canonical artifact from a prior
    /// run already covers it.
    Skipped,
}

impl RunStatus {
    /// The manifest wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Failed { .. } => "failed",
            RunStatus::TimedOut { .. } => "timed_out",
            RunStatus::OomKilled { .. } => "oom_killed",
            RunStatus::CpuExceeded { .. } => "cpu_exceeded",
            RunStatus::Skipped => "skipped",
        }
    }

    /// Whether this entry counts as a suite failure (anything but `ok`
    /// and `skipped`). Failures are retryable under `--retries` and
    /// re-selectable via the `failed:` pseudo-filter.
    pub fn is_failure(&self) -> bool {
        !matches!(self, RunStatus::Ok | RunStatus::Skipped)
    }
}

/// One executed (or skipped / failed) experiment, ready to serialize.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Unique slug (artifact file stem).
    pub slug: String,
    /// Experiment group id.
    pub id: String,
    /// Wall-clock duration of the run (zero for skipped entries).
    pub duration: Duration,
    /// How the run ended.
    pub status: RunStatus,
    /// Execution attempts consumed (1 without `--retries`; the final
    /// attempt produced `status`).
    pub attempts: u32,
    /// The produced table; present exactly when `status` is
    /// [`RunStatus::Ok`].
    pub table: Option<Table>,
}

impl ExperimentRecord {
    fn base(slug: &str, id: &str, duration: Duration, status: RunStatus) -> Self {
        Self {
            slug: slug.to_owned(),
            id: id.to_owned(),
            duration,
            status,
            attempts: 1,
            table: None,
        }
    }

    /// A successful record.
    pub fn ok(slug: &str, id: &str, duration: Duration, table: Table) -> Self {
        Self {
            table: Some(table),
            ..Self::base(slug, id, duration, RunStatus::Ok)
        }
    }

    /// A failed (panicked or crashed) record carrying the message.
    pub fn failed(slug: &str, id: &str, duration: Duration, message: String) -> Self {
        Self::base(slug, id, duration, RunStatus::Failed { message })
    }

    /// An overtime record. `detached` marks the in-process fallback's
    /// leaked worker thread (see [`RunStatus::TimedOut`]).
    pub fn timed_out(
        slug: &str,
        id: &str,
        duration: Duration,
        deadline: Duration,
        detached: bool,
    ) -> Self {
        Self::base(
            slug,
            id,
            duration,
            RunStatus::TimedOut { deadline, detached },
        )
    }

    /// A record for a child killed over its peak-RSS budget.
    pub fn oom_killed(
        slug: &str,
        id: &str,
        duration: Duration,
        peak_rss_mb: u64,
        limit_mb: u64,
    ) -> Self {
        Self::base(
            slug,
            id,
            duration,
            RunStatus::OomKilled {
                peak_rss_mb,
                limit_mb,
            },
        )
    }

    /// A record for a child killed over its CPU-seconds budget.
    pub fn cpu_exceeded(
        slug: &str,
        id: &str,
        duration: Duration,
        cpu_secs: f64,
        limit_secs: u64,
    ) -> Self {
        Self::base(
            slug,
            id,
            duration,
            RunStatus::CpuExceeded {
                cpu_secs,
                limit_secs,
            },
        )
    }

    /// A resume-skip record (prior artifact reused).
    pub fn skipped(slug: &str, id: &str) -> Self {
        Self::base(slug, id, Duration::ZERO, RunStatus::Skipped)
    }

    /// This record with its attempt count (clamped to at least 1).
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// The artifact body: id, seed, jobs, trials scale, duration, and
    /// the table.
    ///
    /// # Panics
    ///
    /// Panics if the record carries no table (only `ok` records have an
    /// artifact body; the manifest entry is the sole trace of the
    /// others).
    pub fn to_json(&self, seed: u64, jobs: usize, trials_scale: f64) -> Value {
        let table = self
            .table
            .as_ref()
            .expect("only ok records serialize to artifacts");
        sorted_object(vec![
            ("id", Value::from(self.id.as_str())),
            ("slug", Value::from(self.slug.as_str())),
            ("seed", Value::from(seed)),
            ("jobs", Value::from(jobs as u64)),
            ("trials_scale", Value::from(trials_scale)),
            (
                "duration_ms",
                Value::from(self.duration.as_secs_f64() * 1e3),
            ),
            ("rows", Value::from(table.rows.len() as u64)),
            ("table", table.to_json()),
        ])
    }

    /// The manifest entry for this record.
    fn manifest_entry(&self) -> Value {
        let mut pairs = vec![
            ("slug", Value::from(self.slug.as_str())),
            ("id", Value::from(self.id.as_str())),
            ("status", Value::from(self.status.as_str())),
            (
                "duration_ms",
                Value::from(self.duration.as_secs_f64() * 1e3),
            ),
        ];
        if self.attempts > 1 {
            pairs.push(("attempts", Value::from(self.attempts)));
        }
        match &self.status {
            RunStatus::Ok => {
                let table = self.table.as_ref().expect("ok record has a table");
                pairs.push(("rows", Value::from(table.rows.len() as u64)));
                pairs.push(("artifact", Value::from(format!("{}.json", self.slug))));
            }
            RunStatus::Failed { message } => {
                pairs.push(("message", Value::from(message.as_str())));
            }
            RunStatus::TimedOut { deadline, detached } => {
                pairs.push(("deadline_secs", Value::from(deadline.as_secs_f64())));
                if *detached {
                    pairs.push(("overtime_detached", Value::from(true)));
                }
            }
            RunStatus::OomKilled {
                peak_rss_mb,
                limit_mb,
            } => {
                pairs.push(("peak_rss_mb", Value::from(*peak_rss_mb)));
                pairs.push(("rss_limit_mb", Value::from(*limit_mb)));
            }
            RunStatus::CpuExceeded {
                cpu_secs,
                limit_secs,
            } => {
                pairs.push(("cpu_secs", Value::from(*cpu_secs)));
                pairs.push(("cpu_limit_secs", Value::from(*limit_secs)));
            }
            RunStatus::Skipped => {
                pairs.push(("artifact", Value::from(format!("{}.json", self.slug))));
            }
        }
        sorted_object(pairs)
    }
}

/// The run-level manifest.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Master seed of the run.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Monte-Carlo trial-count multiplier used (1.0 = published
    /// counts).
    pub trials_scale: f64,
    /// The `--filter` argument(s), if any (joined by `,`).
    pub filter: Option<String>,
    /// Executed experiments, in run order (all statuses).
    pub records: Vec<ExperimentRecord>,
}

impl RunManifest {
    /// The manifest body.
    pub fn to_json(&self) -> Value {
        let experiments: Vec<Value> = self.records.iter().map(|r| r.manifest_entry()).collect();
        let total: Duration = self.records.iter().map(|r| r.duration).sum();
        let failures = self
            .records
            .iter()
            .filter(|r| r.status.is_failure())
            .count();
        sorted_object(vec![
            ("seed", Value::from(self.seed)),
            ("jobs", Value::from(self.jobs as u64)),
            ("trials_scale", Value::from(self.trials_scale)),
            (
                "filter",
                self.filter
                    .as_deref()
                    .map(Value::from)
                    .unwrap_or(Value::Null),
            ),
            ("experiments", Value::Array(experiments)),
            ("failures", Value::from(failures as u64)),
            ("total_duration_ms", Value::from(total.as_secs_f64() * 1e3)),
        ])
    }
}

/// Writes artifacts under one directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
    canonical: bool,
}

impl ArtifactStore {
    /// Opens (and creates if needed) the artifact directory.
    pub fn create(dir: impl AsRef<Path>) -> io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_owned(),
            canonical: false,
        })
    }

    /// Switches the store to canonical mode: every written value is
    /// passed through [`strip_volatile`] first, so artifact trees from
    /// different `--jobs` values (or machines) diff clean.
    pub fn canonical(mut self) -> Self {
        self.canonical = true;
        self
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn render(&self, v: &Value) -> String {
        let v = if self.canonical {
            strip_volatile(v)
        } else {
            v.clone()
        };
        serde_json::to_string_pretty(&v).expect("value serialization is infallible")
    }

    /// Writes `<slug>.json` for one completed record; returns the path.
    pub fn write_record(
        &self,
        record: &ExperimentRecord,
        seed: u64,
        jobs: usize,
        trials_scale: f64,
    ) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("{}.json", record.slug));
        std::fs::write(
            &path,
            self.render(&record.to_json(seed, jobs, trials_scale)),
        )?;
        Ok(path)
    }

    /// Writes an arbitrary JSON value as `<stem>.json`, honouring the
    /// store's canonical mode; returns the path. Used by non-table
    /// artifacts such as fleet snapshots, which must diff clean across
    /// `--shards` the same way tables diff clean across `--jobs`.
    pub fn write_json(&self, stem: &str, v: &Value) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("{stem}.json"));
        std::fs::write(&path, self.render(v))?;
        Ok(path)
    }

    /// Writes (or rewrites) `manifest.json` for the run as recorded so
    /// far; returns the manifest path. Called after every experiment by
    /// the fault-tolerant suite, so an interrupted run leaves a
    /// resumable manifest behind.
    pub fn write_manifest(&self, manifest: &RunManifest) -> io::Result<PathBuf> {
        let path = self.dir.join("manifest.json");
        std::fs::write(&path, self.render(&manifest.to_json()))?;
        Ok(path)
    }

    /// Writes `manifest.json` plus every completed record's artifact in
    /// one shot; returns the manifest path.
    pub fn write_run(&self, manifest: &RunManifest) -> io::Result<PathBuf> {
        for record in &manifest.records {
            if record.status == RunStatus::Ok {
                self.write_record(record, manifest.seed, manifest.jobs, manifest.trials_scale)?;
            }
        }
        self.write_manifest(manifest)
    }
}

/// Canonical form of a filter set: lowercased, trimmed, deduplicated,
/// sorted, and joined by `,`. Two runs select the same experiments iff
/// their normalized filter strings are equal, which is what `--resume`
/// compares — the raw `filter` manifest key keeps the user's spelling.
pub fn normalize_filters<S: AsRef<str>>(filters: &[S]) -> String {
    let mut parts: Vec<String> = filters
        .iter()
        .map(|f| f.as_ref().trim().to_lowercase())
        .filter(|f| !f.is_empty())
        .collect();
    parts.sort();
    parts.dedup();
    parts.join(",")
}

/// A prior run's manifest, re-read for `--resume` and the `failed:`
/// pseudo-filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeState {
    /// Master seed of the prior run.
    pub seed: u64,
    /// Its trials scale.
    pub trials_scale: f64,
    /// Its raw filter string (as typed, joined by `,`).
    pub filter: Option<String>,
    /// Slugs that completed (`ok` or `skipped` — both mean the
    /// artifact on disk is current).
    pub completed: BTreeSet<String>,
    /// Slugs recorded with any failure status (`failed`, `timed_out`,
    /// `oom_killed`, `cpu_exceeded`, or a status this build does not
    /// know), in manifest order. All of them are retryable.
    pub failed: Vec<String>,
}

impl ResumeState {
    /// Reads `manifest.json` from an artifact directory. `None` when
    /// the manifest is absent, unparsable, or missing required keys —
    /// a partial/corrupt manifest never aborts the caller, it just
    /// disables resume.
    pub fn load(dir: impl AsRef<Path>) -> Option<Self> {
        Self::load_manifest(&dir.as_ref().join("manifest.json"))
    }

    /// Reads a specific manifest file (see [`ResumeState::load`]).
    pub fn load_manifest(path: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        let v: Value = serde_json::from_str(&text).ok()?;
        let seed = v.get("seed")?.as_u64()?;
        let trials_scale = v.get("trials_scale")?.as_f64()?;
        let filter = v.get("filter").and_then(Value::as_str).map(str::to_owned);
        let mut completed = BTreeSet::new();
        let mut failed = Vec::new();
        for entry in v.get("experiments")?.as_array()? {
            let slug = entry.get("slug")?.as_str()?.to_owned();
            // Pre-fault-tolerance manifests had no status key; every
            // entry they recorded was a success.
            let status = entry.get("status").and_then(Value::as_str).unwrap_or("ok");
            match status {
                "ok" | "skipped" => {
                    completed.insert(slug);
                }
                _ => failed.push(slug),
            }
        }
        Some(Self {
            seed,
            trials_scale,
            filter,
            completed,
            failed,
        })
    }

    /// Whether a new run with these settings may reuse this manifest's
    /// artifacts: same seed, same trials scale, same normalized filter
    /// set.
    pub fn compatible_with<S: AsRef<str>>(
        &self,
        seed: u64,
        trials_scale: f64,
        filters: &[S],
    ) -> bool {
        let prior: Vec<&str> = self
            .filter
            .as_deref()
            .map(|f| f.split(',').collect())
            .unwrap_or_default();
        self.seed == seed
            && self.trials_scale == trials_scale
            && normalize_filters(&prior) == normalize_filters(filters)
    }

    /// Slugs whose artifact both completed **and** is still on disk in
    /// `dir` — the set `--resume` skips.
    pub fn reusable(&self, dir: &Path) -> BTreeSet<String> {
        self.completed
            .iter()
            .filter(|slug| dir.join(format!("{slug}.json")).exists())
            .cloned()
            .collect()
    }
}

/// Removes volatile keys (`duration_ms`, `total_duration_ms`) from an
/// artifact or manifest value, recursively — what's left must be
/// identical across runs with the same seed, regardless of `--jobs`.
pub fn strip_durations(v: &Value) -> Value {
    match v {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| k.as_str() != "duration_ms" && k.as_str() != "total_duration_ms")
                .map(|(k, val)| (k.clone(), strip_durations(val)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(strip_durations).collect()),
        other => other.clone(),
    }
}

/// Removes everything run-environment-specific (`duration_ms`,
/// `total_duration_ms`, `jobs`, `trials_scale`, and the fleet
/// throughput keys `vehicle_ticks_per_sec`/`shards`) from an artifact
/// or manifest value, recursively. Two canonicalized runs with the
/// same seed must be byte-identical even when produced with
/// *different* `--jobs` (or `--shards`) values — the cross-jobs
/// artifact diff CI runs. (`trials_scale` is a precision/runtime knob
/// like `jobs`; scaled tables differ in their Monte-Carlo cells, but
/// the key itself never belongs in a canonical artifact. Throughput
/// and shard count are wall-clock facts of one machine, not functions
/// of the seed.)
pub fn strip_volatile(v: &Value) -> Value {
    const VOLATILE: [&str; 6] = [
        "duration_ms",
        "total_duration_ms",
        "jobs",
        "trials_scale",
        "shards",
        "vehicle_ticks_per_sec",
    ];
    match v {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| !VOLATILE.contains(&k.as_str()))
                .map(|(k, val)| (k.clone(), strip_volatile(val)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ms: u64) -> ExperimentRecord {
        let mut table = Table::new("E9", "demo", &["a"]);
        table.push_row(vec!["1".into()]);
        ExperimentRecord::ok("e9-demo", "E9", Duration::from_millis(ms), table)
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("autosec-runner-{name}"))
    }

    #[test]
    fn record_json_has_required_keys() {
        let v = record(12).to_json(7, 4, 1.0);
        assert_eq!(v["id"].as_str(), Some("E9"));
        assert_eq!(v["seed"].as_u64(), Some(7));
        assert_eq!(v["jobs"].as_u64(), Some(4));
        assert_eq!(v["rows"].as_u64(), Some(1));
        assert_eq!(v["trials_scale"].as_f64(), Some(1.0));
        assert!(v["duration_ms"].as_f64().is_some());
        assert!(v["table"]["rows"].as_array().is_some());
    }

    #[test]
    fn strip_durations_makes_timing_invisible() {
        let a = strip_durations(&record(5).to_json(7, 1, 1.0));
        let b = strip_durations(&record(5000).to_json(7, 1, 1.0));
        assert_eq!(a.to_string(), b.to_string());
        assert!(!a.to_string().contains("duration"));
    }

    #[test]
    fn strip_volatile_also_drops_jobs_and_trials_scale() {
        let a = strip_volatile(&record(5).to_json(7, 1, 1.0));
        let b = strip_volatile(&record(5000).to_json(7, 4, 2.0));
        assert_eq!(a.to_string(), b.to_string());
        assert!(!a.to_string().contains("jobs"));
        assert!(!a.to_string().contains("duration"));
        assert!(!a.to_string().contains("trials_scale"));
        // Everything else survives.
        assert_eq!(a["seed"].as_u64(), Some(7));
        assert_eq!(a["slug"].as_str(), Some("e9-demo"));
    }

    #[test]
    fn strip_volatile_descends_into_nested_arrays() {
        let v: Value = serde_json::from_str(
            r#"{"runs": [[{"jobs": 4, "keep": 1}, {"duration_ms": 9.0}], [{"trials_scale": 0.5}]], "jobs": 2}"#,
        )
        .expect("valid json");
        let stripped = strip_volatile(&v);
        let text = stripped.to_string();
        assert!(!text.contains("jobs"));
        assert!(!text.contains("duration_ms"));
        assert!(!text.contains("trials_scale"));
        assert_eq!(stripped["runs"][0][0]["keep"].as_i64(), Some(1));
        // Array shape untouched: empty objects remain as placeholders.
        assert_eq!(stripped["runs"][0].as_array().map(Vec::len), Some(2));
        assert_eq!(stripped["runs"].as_array().map(Vec::len), Some(2));
    }

    #[test]
    fn canonical_store_writes_jobs_invariant_artifacts() {
        let read = |jobs: usize| {
            let dir = tmp(&format!("canon-{jobs}"));
            let _ = std::fs::remove_dir_all(&dir);
            let store = ArtifactStore::create(&dir).expect("create dir").canonical();
            let m = RunManifest {
                seed: 9,
                jobs,
                trials_scale: jobs as f64,
                filter: None,
                records: vec![record(jobs as u64 * 11)],
            };
            let path = store.write_run(&m).expect("write");
            let manifest = std::fs::read_to_string(path).expect("read manifest");
            let rec =
                std::fs::read_to_string(store.dir().join("e9-demo.json")).expect("read record");
            let _ = std::fs::remove_dir_all(&dir);
            (manifest, rec)
        };
        assert_eq!(read(1), read(4));
    }

    #[test]
    fn write_json_honours_canonical_mode() {
        let v: Value = serde_json::from_str(
            r#"{"tick": 5, "shards": 4, "vehicle_ticks_per_sec": 123456.7, "census": {"healthy": 9}}"#,
        )
        .expect("valid json");
        let dir = tmp("write-json");
        let _ = std::fs::remove_dir_all(&dir);
        let plain = ArtifactStore::create(&dir).expect("create dir");
        let path = plain.write_json("fleet", &v).expect("write");
        assert!(path.ends_with("fleet.json"));
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("shards"), "plain mode keeps everything");
        let canon = plain.clone().canonical();
        canon.write_json("fleet", &v).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(!text.contains("shards"));
        assert!(!text.contains("vehicle_ticks_per_sec"));
        assert!(text.contains("healthy"), "payload survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_lists_artifacts_and_statuses() {
        let m = RunManifest {
            seed: 1,
            jobs: 2,
            trials_scale: 1.0,
            filter: Some("E9".into()),
            records: vec![
                record(3),
                ExperimentRecord::failed(
                    "e1-depth",
                    "E1",
                    Duration::from_millis(4),
                    "index out of bounds".into(),
                ),
                ExperimentRecord::timed_out(
                    "e10-cascade",
                    "E10",
                    Duration::from_secs(31),
                    Duration::from_secs(30),
                    false,
                ),
                ExperimentRecord::skipped("e2-lrp-rounds", "E2"),
                ExperimentRecord::oom_killed("e5-mem", "E5", Duration::from_secs(2), 131, 64),
                ExperimentRecord::cpu_exceeded("e6-cpu", "E6", Duration::from_secs(9), 8.5, 8),
            ],
        };
        let v = m.to_json();
        let exps = v["experiments"].as_array().expect("array");
        assert_eq!(exps.len(), 6);
        assert_eq!(exps[0]["status"].as_str(), Some("ok"));
        assert_eq!(exps[0]["artifact"].as_str(), Some("e9-demo.json"));
        assert_eq!(exps[1]["status"].as_str(), Some("failed"));
        assert_eq!(exps[1]["message"].as_str(), Some("index out of bounds"));
        assert!(
            exps[1].get("artifact").is_none(),
            "failures have no artifact"
        );
        assert_eq!(exps[2]["status"].as_str(), Some("timed_out"));
        assert_eq!(exps[2]["deadline_secs"].as_f64(), Some(30.0));
        assert!(
            exps[2].get("overtime_detached").is_none(),
            "non-detached timeouts carry no flag"
        );
        assert_eq!(exps[3]["status"].as_str(), Some("skipped"));
        assert_eq!(exps[3]["artifact"].as_str(), Some("e2-lrp-rounds.json"));
        assert_eq!(exps[4]["status"].as_str(), Some("oom_killed"));
        assert_eq!(exps[4]["peak_rss_mb"].as_u64(), Some(131));
        assert_eq!(exps[4]["rss_limit_mb"].as_u64(), Some(64));
        assert_eq!(exps[5]["status"].as_str(), Some("cpu_exceeded"));
        assert_eq!(exps[5]["cpu_secs"].as_f64(), Some(8.5));
        assert_eq!(exps[5]["cpu_limit_secs"].as_u64(), Some(8));
        assert_eq!(v["failures"].as_u64(), Some(4));
        assert_eq!(v["filter"].as_str(), Some("E9"));
    }

    #[test]
    fn detached_timeouts_are_flagged_in_the_manifest() {
        let leaked = ExperimentRecord::timed_out(
            "e3-leak",
            "E3",
            Duration::from_secs(2),
            Duration::from_secs(1),
            true,
        );
        let m = RunManifest {
            seed: 1,
            jobs: 1,
            trials_scale: 1.0,
            filter: None,
            records: vec![leaked],
        };
        let entry = &m.to_json()["experiments"][0];
        assert_eq!(entry["status"].as_str(), Some("timed_out"));
        assert_eq!(entry["overtime_detached"].as_bool(), Some(true));
    }

    #[test]
    fn attempts_key_appears_only_after_retries() {
        let single = record(1);
        assert_eq!(single.attempts, 1);
        let m = RunManifest {
            seed: 1,
            jobs: 1,
            trials_scale: 1.0,
            filter: None,
            records: vec![record(1), record(2).with_attempts(3)],
        };
        let v = m.to_json();
        assert!(v["experiments"][0].get("attempts").is_none());
        assert_eq!(v["experiments"][1]["attempts"].as_u64(), Some(3));
        assert_eq!(record(1).with_attempts(0).attempts, 1, "clamped");
    }

    #[test]
    fn store_round_trips_via_disk() {
        let dir = tmp("artifact-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::create(&dir).expect("create dir");
        let m = RunManifest {
            seed: 9,
            jobs: 1,
            trials_scale: 1.0,
            filter: None,
            records: vec![record(1)],
        };
        let path = store.write_run(&m).expect("write");
        let text = std::fs::read_to_string(path).expect("read back");
        let v: Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["seed"].as_u64(), Some(9));
        assert!(store.dir().join("e9-demo.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_create_fails_under_a_file() {
        // A path whose parent is a regular file cannot become a
        // directory; the store must surface the io error, not panic.
        let file = tmp("not-a-dir");
        std::fs::write(&file, "x").expect("write file");
        let err = ArtifactStore::create(file.join("sub"));
        assert!(err.is_err(), "creating a dir under a file must fail");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn write_record_fails_when_dir_vanishes() {
        let dir = tmp("vanishing");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::create(&dir).expect("create dir");
        std::fs::remove_dir_all(&dir).expect("rm");
        assert!(store.write_record(&record(1), 1, 1, 1.0).is_err());
    }

    #[test]
    fn failed_records_never_serialize_artifacts() {
        let dir = tmp("no-fail-artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::create(&dir).expect("create dir");
        let m = RunManifest {
            seed: 1,
            jobs: 1,
            trials_scale: 1.0,
            filter: None,
            records: vec![ExperimentRecord::failed(
                "e1-depth",
                "E1",
                Duration::ZERO,
                "boom".into(),
            )],
        };
        store.write_run(&m).expect("manifest still written");
        assert!(!store.dir().join("e1-depth.json").exists());
        assert!(store.dir().join("manifest.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_state_round_trips() {
        let dir = tmp("resume-round-trip");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::create(&dir).expect("create dir");
        let m = RunManifest {
            seed: 7,
            jobs: 4,
            trials_scale: 0.5,
            filter: Some("E9,tag:parallel".into()),
            records: vec![
                record(3),
                ExperimentRecord::failed("e1-depth", "E1", Duration::ZERO, "boom".into()),
                ExperimentRecord::skipped("e2-lrp-rounds", "E2"),
            ],
        };
        store.write_run(&m).expect("write");
        let state = ResumeState::load(&dir).expect("loadable");
        assert_eq!(state.seed, 7);
        assert_eq!(state.trials_scale, 0.5);
        assert_eq!(state.filter.as_deref(), Some("E9,tag:parallel"));
        assert_eq!(state.failed, vec!["e1-depth".to_owned()]);
        assert!(state.completed.contains("e9-demo"));
        assert!(state.completed.contains("e2-lrp-rounds"));
        // Only e9-demo has its artifact on disk (skipped entries point
        // at artifacts this run never wrote).
        let reusable = state.reusable(&dir);
        assert!(reusable.contains("e9-demo"));
        assert!(!reusable.contains("e2-lrp-rounds"));
        assert!(state.compatible_with(7, 0.5, &["tag:PARALLEL", "e9"]));
        assert!(!state.compatible_with(8, 0.5, &["tag:parallel", "e9"]));
        assert!(!state.compatible_with(7, 1.0, &["tag:parallel", "e9"]));
        assert!(!state.compatible_with(7, 0.5, &["e9"]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_state_treats_killed_statuses_as_retryable() {
        // A manifest carrying the isolation-era statuses round-trips:
        // oom_killed / cpu_exceeded / timed_out(detached) entries all
        // land in `failed` (so --resume re-runs them), never in
        // `completed`.
        let dir = tmp("resume-killed");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::create(&dir).expect("create dir");
        let m = RunManifest {
            seed: 3,
            jobs: 2,
            trials_scale: 1.0,
            filter: None,
            records: vec![
                record(1),
                ExperimentRecord::oom_killed("e5-mem", "E5", Duration::from_secs(2), 131, 64),
                ExperimentRecord::cpu_exceeded("e6-cpu", "E6", Duration::from_secs(9), 8.5, 8),
                ExperimentRecord::timed_out(
                    "e3-leak",
                    "E3",
                    Duration::from_secs(2),
                    Duration::from_secs(1),
                    true,
                ),
            ],
        };
        store.write_run(&m).expect("write");
        let state = ResumeState::load(&dir).expect("loadable");
        assert_eq!(
            state.failed,
            vec![
                "e5-mem".to_owned(),
                "e6-cpu".to_owned(),
                "e3-leak".to_owned()
            ]
        );
        assert_eq!(state.completed.len(), 1);
        assert!(state.completed.contains("e9-demo"));
        // Statuses this build has never heard of are also retryable —
        // forward compatibility with future kill classes.
        std::fs::write(
            dir.join("manifest.json"),
            r#"{"seed": 3, "trials_scale": 1.0, "filter": null,
                "experiments": [{"slug": "e9-demo", "id": "E9",
                                 "status": "quarantined_by_mars_rover"}]}"#,
        )
        .expect("write");
        let state = ResumeState::load(&dir).expect("loadable");
        assert_eq!(state.failed, vec!["e9-demo".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_state_rejects_partial_or_garbage_manifests() {
        let dir = tmp("resume-garbage");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert_eq!(ResumeState::load(&dir), None, "missing manifest");
        std::fs::write(dir.join("manifest.json"), "{ \"seed\": 4, ").expect("write");
        assert_eq!(ResumeState::load(&dir), None, "truncated manifest");
        std::fs::write(dir.join("manifest.json"), "{\"seed\": 4}").expect("write");
        assert_eq!(ResumeState::load(&dir), None, "missing keys");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_state_accepts_pre_status_manifests() {
        // Manifests written before this PR carried no status key; all
        // their entries were successes.
        let dir = tmp("resume-legacy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            dir.join("manifest.json"),
            r#"{"seed": 42, "trials_scale": 1.0, "filter": null,
                "experiments": [{"slug": "e9-demo", "id": "E9", "rows": 1,
                                 "artifact": "e9-demo.json", "duration_ms": 2.0}]}"#,
        )
        .expect("write");
        let state = ResumeState::load(&dir).expect("loadable");
        assert!(state.completed.contains("e9-demo"));
        assert!(state.failed.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn normalize_filters_canonicalizes() {
        assert_eq!(
            normalize_filters(&["E10", "tag:Parallel"]),
            "e10,tag:parallel"
        );
        assert_eq!(
            normalize_filters(&["tag:parallel", " e10 "]),
            "e10,tag:parallel"
        );
        assert_eq!(normalize_filters(&["E10", "e10"]), "e10");
        assert_eq!(normalize_filters::<&str>(&[]), "");
    }
}
