//! Run manifest and per-experiment JSON artifacts.
//!
//! A run writes one `<slug>.json` per executed experiment plus a
//! `manifest.json` tying them together. Every field except
//! `duration_ms` is a pure function of `(seed, experiment)`, so two
//! artifacts from the same seed compare equal once the duration key is
//! dropped — the property the determinism tests check.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use serde_json::Value;

use crate::table::{sorted_object, Table};

/// The default artifact directory, relative to the workspace root.
pub const DEFAULT_ARTIFACT_DIR: &str = "target/experiments";

/// One executed experiment, ready to serialize.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Unique slug (artifact file stem).
    pub slug: String,
    /// Experiment group id.
    pub id: String,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// The produced table.
    pub table: Table,
}

impl ExperimentRecord {
    /// The artifact body: id, seed, jobs, trials scale, duration, and
    /// the table.
    pub fn to_json(&self, seed: u64, jobs: usize, trials_scale: f64) -> Value {
        sorted_object(vec![
            ("id", Value::from(self.id.as_str())),
            ("slug", Value::from(self.slug.as_str())),
            ("seed", Value::from(seed)),
            ("jobs", Value::from(jobs as u64)),
            ("trials_scale", Value::from(trials_scale)),
            (
                "duration_ms",
                Value::from(self.duration.as_secs_f64() * 1e3),
            ),
            ("rows", Value::from(self.table.rows.len() as u64)),
            ("table", self.table.to_json()),
        ])
    }
}

/// The run-level manifest.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Master seed of the run.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Monte-Carlo trial-count multiplier used (1.0 = published
    /// counts).
    pub trials_scale: f64,
    /// The `--filter` argument(s), if any (joined by `,`).
    pub filter: Option<String>,
    /// Executed experiments, in run order.
    pub records: Vec<ExperimentRecord>,
}

impl RunManifest {
    /// The manifest body.
    pub fn to_json(&self) -> Value {
        let experiments: Vec<Value> = self
            .records
            .iter()
            .map(|r| {
                sorted_object(vec![
                    ("slug", Value::from(r.slug.as_str())),
                    ("id", Value::from(r.id.as_str())),
                    ("duration_ms", Value::from(r.duration.as_secs_f64() * 1e3)),
                    ("rows", Value::from(r.table.rows.len() as u64)),
                    ("artifact", Value::from(format!("{}.json", r.slug))),
                ])
            })
            .collect();
        let total: Duration = self.records.iter().map(|r| r.duration).sum();
        sorted_object(vec![
            ("seed", Value::from(self.seed)),
            ("jobs", Value::from(self.jobs as u64)),
            ("trials_scale", Value::from(self.trials_scale)),
            (
                "filter",
                self.filter
                    .as_deref()
                    .map(Value::from)
                    .unwrap_or(Value::Null),
            ),
            ("experiments", Value::Array(experiments)),
            ("total_duration_ms", Value::from(total.as_secs_f64() * 1e3)),
        ])
    }
}

/// Writes artifacts under one directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
    canonical: bool,
}

impl ArtifactStore {
    /// Opens (and creates if needed) the artifact directory.
    pub fn create(dir: impl AsRef<Path>) -> io::Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_owned(),
            canonical: false,
        })
    }

    /// Switches the store to canonical mode: every written value is
    /// passed through [`strip_volatile`] first, so artifact trees from
    /// different `--jobs` values (or machines) diff clean.
    pub fn canonical(mut self) -> Self {
        self.canonical = true;
        self
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn render(&self, v: &Value) -> String {
        let v = if self.canonical {
            strip_volatile(v)
        } else {
            v.clone()
        };
        serde_json::to_string_pretty(&v).expect("value serialization is infallible")
    }

    /// Writes `<slug>.json` for one record; returns the path.
    pub fn write_record(
        &self,
        record: &ExperimentRecord,
        seed: u64,
        jobs: usize,
        trials_scale: f64,
    ) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("{}.json", record.slug));
        std::fs::write(
            &path,
            self.render(&record.to_json(seed, jobs, trials_scale)),
        )?;
        Ok(path)
    }

    /// Writes `manifest.json` (and every record) for a full run;
    /// returns the manifest path.
    pub fn write_run(&self, manifest: &RunManifest) -> io::Result<PathBuf> {
        for record in &manifest.records {
            self.write_record(record, manifest.seed, manifest.jobs, manifest.trials_scale)?;
        }
        let path = self.dir.join("manifest.json");
        std::fs::write(&path, self.render(&manifest.to_json()))?;
        Ok(path)
    }
}

/// Removes volatile keys (`duration_ms`, `total_duration_ms`) from an
/// artifact or manifest value, recursively — what's left must be
/// identical across runs with the same seed, regardless of `--jobs`.
pub fn strip_durations(v: &Value) -> Value {
    match v {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| k.as_str() != "duration_ms" && k.as_str() != "total_duration_ms")
                .map(|(k, val)| (k.clone(), strip_durations(val)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(strip_durations).collect()),
        other => other.clone(),
    }
}

/// Removes everything run-environment-specific (`duration_ms`,
/// `total_duration_ms`, `jobs`, **and** `trials_scale`) from an
/// artifact or manifest value, recursively. Two canonicalized runs
/// with the same seed must be byte-identical even when produced with
/// *different* `--jobs` values — the cross-jobs artifact diff CI runs.
/// (`trials_scale` is a precision/runtime knob like `jobs`; scaled
/// tables differ in their Monte-Carlo cells, but the key itself never
/// belongs in a canonical artifact.)
pub fn strip_volatile(v: &Value) -> Value {
    const VOLATILE: [&str; 4] = ["duration_ms", "total_duration_ms", "jobs", "trials_scale"];
    match v {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| !VOLATILE.contains(&k.as_str()))
                .map(|(k, val)| (k.clone(), strip_volatile(val)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ms: u64) -> ExperimentRecord {
        let mut table = Table::new("E9", "demo", &["a"]);
        table.push_row(vec!["1".into()]);
        ExperimentRecord {
            slug: "e9-demo".into(),
            id: "E9".into(),
            duration: Duration::from_millis(ms),
            table,
        }
    }

    #[test]
    fn record_json_has_required_keys() {
        let v = record(12).to_json(7, 4, 1.0);
        assert_eq!(v["id"].as_str(), Some("E9"));
        assert_eq!(v["seed"].as_u64(), Some(7));
        assert_eq!(v["jobs"].as_u64(), Some(4));
        assert_eq!(v["rows"].as_u64(), Some(1));
        assert_eq!(v["trials_scale"].as_f64(), Some(1.0));
        assert!(v["duration_ms"].as_f64().is_some());
        assert!(v["table"]["rows"].as_array().is_some());
    }

    #[test]
    fn strip_durations_makes_timing_invisible() {
        let a = strip_durations(&record(5).to_json(7, 1, 1.0));
        let b = strip_durations(&record(5000).to_json(7, 1, 1.0));
        assert_eq!(a.to_string(), b.to_string());
        assert!(!a.to_string().contains("duration"));
    }

    #[test]
    fn strip_volatile_also_drops_jobs_and_trials_scale() {
        let a = strip_volatile(&record(5).to_json(7, 1, 1.0));
        let b = strip_volatile(&record(5000).to_json(7, 4, 2.0));
        assert_eq!(a.to_string(), b.to_string());
        assert!(!a.to_string().contains("jobs"));
        assert!(!a.to_string().contains("duration"));
        assert!(!a.to_string().contains("trials_scale"));
        // Everything else survives.
        assert_eq!(a["seed"].as_u64(), Some(7));
        assert_eq!(a["slug"].as_str(), Some("e9-demo"));
    }

    #[test]
    fn canonical_store_writes_jobs_invariant_artifacts() {
        let read = |jobs: usize| {
            let dir = std::env::temp_dir().join(format!("autosec-runner-canon-{jobs}"));
            let _ = std::fs::remove_dir_all(&dir);
            let store = ArtifactStore::create(&dir).expect("create dir").canonical();
            let m = RunManifest {
                seed: 9,
                jobs,
                trials_scale: jobs as f64,
                filter: None,
                records: vec![record(jobs as u64 * 11)],
            };
            let path = store.write_run(&m).expect("write");
            let manifest = std::fs::read_to_string(path).expect("read manifest");
            let rec =
                std::fs::read_to_string(store.dir().join("e9-demo.json")).expect("read record");
            let _ = std::fs::remove_dir_all(&dir);
            (manifest, rec)
        };
        assert_eq!(read(1), read(4));
    }

    #[test]
    fn manifest_lists_artifacts() {
        let m = RunManifest {
            seed: 1,
            jobs: 2,
            trials_scale: 1.0,
            filter: Some("E9".into()),
            records: vec![record(3)],
        };
        let v = m.to_json();
        assert_eq!(v["experiments"].as_array().map(Vec::len), Some(1));
        assert_eq!(
            v["experiments"][0]["artifact"].as_str(),
            Some("e9-demo.json")
        );
        assert_eq!(v["filter"].as_str(), Some("E9"));
    }

    #[test]
    fn store_round_trips_via_disk() {
        let dir = std::env::temp_dir().join("autosec-runner-artifact-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::create(&dir).expect("create dir");
        let m = RunManifest {
            seed: 9,
            jobs: 1,
            trials_scale: 1.0,
            filter: None,
            records: vec![record(1)],
        };
        let path = store.write_run(&m).expect("write");
        let text = std::fs::read_to_string(path).expect("read back");
        let v: Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["seed"].as_u64(), Some(9));
        assert!(store.dir().join("e9-demo.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
