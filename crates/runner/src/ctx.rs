//! The run context handed to every experiment.

use autosec_sim::SimRng;

/// Default master seed when the caller does not pick one.
pub const DEFAULT_SEED: u64 = 42;

/// Seed and parallelism settings for one experiment run.
///
/// Experiments derive all randomness from [`RunCtx::rng`] with a
/// per-purpose label, and fan trials out with
/// [`par_trials`](crate::par_trials) using [`RunCtx::jobs`]. Tables
/// produced under the same seed are bit-identical for every job count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCtx {
    /// Master seed for the whole run.
    pub seed: u64,
    /// Worker threads for parallel sweeps (1 = serial).
    pub jobs: usize,
    /// Multiplier applied to Monte-Carlo trial counts via
    /// [`RunCtx::trials`] (1.0 = the published counts). Like `jobs`, it
    /// changes precision/runtime, never the per-trial streams, and is
    /// stripped from canonical artifacts.
    pub trials_scale: f64,
}

impl RunCtx {
    /// A context with an explicit seed and job count.
    ///
    /// `jobs` is clamped to at least 1.
    pub fn new(seed: u64, jobs: usize) -> Self {
        Self {
            seed,
            jobs: jobs.max(1),
            trials_scale: 1.0,
        }
    }

    /// This context with a Monte-Carlo trial-count multiplier.
    ///
    /// Non-finite or non-positive scales fall back to 1.0.
    pub fn with_trials_scale(mut self, scale: f64) -> Self {
        self.trials_scale = if scale.is_finite() && scale > 0.0 {
            scale
        } else {
            1.0
        };
        self
    }

    /// A published trial count scaled by [`RunCtx::trials_scale`],
    /// never below 1. At the default scale of 1.0 this is the identity,
    /// so canonical tables are unchanged.
    pub fn trials(&self, base: usize) -> usize {
        ((base as f64 * self.trials_scale).round() as usize).max(1)
    }

    /// A decorrelated stream for one purpose within an experiment.
    ///
    /// Pure function of `(seed, label)`: calling it repeatedly, in any
    /// order, always yields the same stream.
    pub fn rng(&self, label: &str) -> SimRng {
        SimRng::seed(self.seed).fork(label)
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        Self::new(DEFAULT_SEED, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(RunCtx::new(1, 0).jobs, 1);
    }

    #[test]
    fn trials_scale_defaults_to_identity() {
        let ctx = RunCtx::new(1, 1);
        assert_eq!(ctx.trials_scale, 1.0);
        for n in [1, 40, 200, 3000] {
            assert_eq!(ctx.trials(n), n);
        }
    }

    #[test]
    fn trials_scale_multiplies_and_floors_at_one() {
        let ctx = RunCtx::new(1, 1).with_trials_scale(0.25);
        assert_eq!(ctx.trials(200), 50);
        assert_eq!(ctx.trials(1), 1, "never zero trials");
        let big = RunCtx::new(1, 1).with_trials_scale(2.5);
        assert_eq!(big.trials(40), 100);
    }

    #[test]
    fn tiny_scales_never_round_to_zero_trials() {
        // A `--trials-scale 0.001` smoke run must still execute every
        // experiment: scaled counts clamp to >= 1, they never round to
        // 0 (which would silently skip the Monte-Carlo loop and emit
        // empty or NaN cells).
        for scale in [0.001, 0.01, 1e-9] {
            let ctx = RunCtx::new(1, 1).with_trials_scale(scale);
            for base in [1, 5, 40, 200, 3000] {
                assert!(ctx.trials(base) >= 1, "scale {scale} base {base}");
            }
        }
    }

    #[test]
    fn degenerate_scales_fall_back_to_identity() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(RunCtx::new(1, 1).with_trials_scale(bad).trials_scale, 1.0);
        }
    }

    #[test]
    fn rng_is_label_stable() {
        let ctx = RunCtx::new(7, 4);
        assert_eq!(ctx.rng("x").next_u64(), ctx.rng("x").next_u64());
        assert_ne!(ctx.rng("x").next_u64(), ctx.rng("y").next_u64());
    }

    #[test]
    fn rng_ignores_jobs() {
        // The determinism contract: parallelism must not leak into the
        // random streams.
        let a = RunCtx::new(7, 1).rng("x").next_u64();
        let b = RunCtx::new(7, 8).rng("x").next_u64();
        assert_eq!(a, b);
    }
}
