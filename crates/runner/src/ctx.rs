//! The run context handed to every experiment.

use autosec_sim::SimRng;

/// Default master seed when the caller does not pick one.
pub const DEFAULT_SEED: u64 = 42;

/// Seed and parallelism settings for one experiment run.
///
/// Experiments derive all randomness from [`RunCtx::rng`] with a
/// per-purpose label, and fan trials out with
/// [`par_trials`](crate::par_trials) using [`RunCtx::jobs`]. Tables
/// produced under the same seed are bit-identical for every job count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCtx {
    /// Master seed for the whole run.
    pub seed: u64,
    /// Worker threads for parallel sweeps (1 = serial).
    pub jobs: usize,
}

impl RunCtx {
    /// A context with an explicit seed and job count.
    ///
    /// `jobs` is clamped to at least 1.
    pub fn new(seed: u64, jobs: usize) -> Self {
        Self {
            seed,
            jobs: jobs.max(1),
        }
    }

    /// A decorrelated stream for one purpose within an experiment.
    ///
    /// Pure function of `(seed, label)`: calling it repeatedly, in any
    /// order, always yields the same stream.
    pub fn rng(&self, label: &str) -> SimRng {
        SimRng::seed(self.seed).fork(label)
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        Self::new(DEFAULT_SEED, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(RunCtx::new(1, 0).jobs, 1);
    }

    #[test]
    fn rng_is_label_stable() {
        let ctx = RunCtx::new(7, 4);
        assert_eq!(ctx.rng("x").next_u64(), ctx.rng("x").next_u64());
        assert_ne!(ctx.rng("x").next_u64(), ctx.rng("y").next_u64());
    }

    #[test]
    fn rng_ignores_jobs() {
        // The determinism contract: parallelism must not leak into the
        // random streams.
        let a = RunCtx::new(7, 1).rng("x").next_u64();
        let b = RunCtx::new(7, 8).rng("x").next_u64();
        assert_eq!(a, b);
    }
}
