//! Experiments as data: id, slug, title, tags, cost, and a closure.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use crate::artifact::{ResumeState, DEFAULT_ARTIFACT_DIR};
use crate::ctx::RunCtx;
use crate::table::Table;

/// Rough cost class of one experiment (drives scheduling hints, soft
/// deadlines, and lets callers pick cheap subsets for smoke tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cost {
    /// Milliseconds.
    Cheap,
    /// Tens to hundreds of milliseconds.
    Moderate,
    /// Monte-Carlo sweeps dominating the suite's runtime.
    Heavy,
}

impl Cost {
    /// The default soft deadline for one experiment of this class,
    /// used by the fault-tolerant suite runner (override with
    /// `--deadline-secs`). Generous on purpose: a healthy run never
    /// comes close, so tripping one means the experiment is hung or
    /// pathologically slow.
    pub fn deadline(self) -> Duration {
        match self {
            Cost::Cheap => Duration::from_secs(30),
            Cost::Moderate => Duration::from_secs(120),
            Cost::Heavy => Duration::from_secs(600),
        }
    }

    /// The default CPU-seconds ceiling for a supervised child of this
    /// class (override with `--cpu-limit-secs`): the wall deadline
    /// times the worker count, since a child legitimately saturating
    /// `jobs` threads burns up to `jobs` CPU-seconds per wall second.
    pub fn cpu_budget_secs(self, jobs: usize) -> u64 {
        self.deadline().as_secs() * jobs.max(1) as u64
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Cost::Cheap => "cheap",
            Cost::Moderate => "moderate",
            Cost::Heavy => "heavy",
        })
    }
}

type RunFn = Box<dyn Fn(&RunCtx) -> Table + Send + Sync>;

/// One registered experiment.
pub struct Experiment {
    /// Group id shared with sibling tables, e.g. `"E2"`.
    pub id: &'static str,
    /// Unique slug, e.g. `"e2-lrp-rounds"` (artifact file stem).
    pub slug: &'static str,
    /// Table title (paper anchor).
    pub title: &'static str,
    /// Free-form tags, e.g. `["phy", "ranging"]`.
    pub tags: &'static [&'static str],
    /// STRIDE classes the experiment exercises, as lowercase labels
    /// (e.g. `["spoofing", "tampering"]`). Empty when the experiment
    /// has no threat-class angle; drives the `stride:` filter and the
    /// `--list` stride column.
    pub strides: &'static [&'static str],
    /// Cost class.
    pub cost: Cost,
    run: RunFn,
}

impl Experiment {
    /// Registers an experiment body.
    pub fn new(
        id: &'static str,
        slug: &'static str,
        title: &'static str,
        tags: &'static [&'static str],
        cost: Cost,
        run: impl Fn(&RunCtx) -> Table + Send + Sync + 'static,
    ) -> Self {
        Self {
            id,
            slug,
            title,
            tags,
            strides: &[],
            cost,
            run: Box::new(run),
        }
    }

    /// Annotates the experiment with the STRIDE classes it exercises.
    pub fn with_strides(mut self, strides: &'static [&'static str]) -> Self {
        self.strides = strides;
        self
    }

    /// Produces the table under the given context.
    pub fn run(&self, ctx: &RunCtx) -> Table {
        (self.run)(ctx)
    }
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("slug", &self.slug)
            .field("title", &self.title)
            .field("tags", &self.tags)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// The ordered experiment registry.
///
/// Experiments are stored behind [`Arc`] so the suite runner can hand
/// one to a deadline-supervised worker thread without tying the
/// thread's lifetime to the registry borrow.
#[derive(Debug, Default)]
pub struct Registry {
    experiments: Vec<Arc<Experiment>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an experiment, keeping registration order.
    ///
    /// # Panics
    ///
    /// Panics if the slug is already registered — slugs name artifact
    /// files, so they must be unique.
    pub fn register(&mut self, exp: Experiment) {
        assert!(
            self.experiments.iter().all(|e| e.slug != exp.slug),
            "duplicate experiment slug {:?}",
            exp.slug
        );
        self.experiments.push(Arc::new(exp));
    }

    /// All experiments, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Experiment> {
        self.experiments.iter().map(AsRef::as_ref)
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// All experiments as shared handles, in registration order.
    pub fn all(&self) -> Vec<Arc<Experiment>> {
        self.experiments.clone()
    }

    /// Experiments whose group id **or** slug equals `filter`,
    /// case-insensitively. Exact match only: `"E1"` selects E1 and
    /// never E10–E13.
    ///
    /// Three pseudo-filter prefixes switch to other selection modes:
    ///
    /// - `tag:<tag>` returns every experiment carrying that exact tag
    ///   (also case-insensitive).
    /// - `stride:<class>` returns every experiment annotated with that
    ///   STRIDE class label (e.g. `stride:spoofing`).
    /// - `failed:<dir-or-manifest>` re-selects the experiments a prior
    ///   run's manifest recorded as `failed` or `timed_out` (an empty
    ///   path reads the default artifact directory). An unreadable or
    ///   corrupt manifest selects nothing.
    pub fn select(&self, filter: &str) -> Vec<Arc<Experiment>> {
        self.select_many(&[filter])
    }

    /// Experiments matching **any** of `filters` (same syntax as
    /// [`Registry::select`]), in registration order.
    ///
    /// The registry is walked once and each experiment is tested
    /// against all filters, so an experiment matched by several of them
    /// — say a `tag:` filter plus its own slug — appears exactly once
    /// and never runs twice in one invocation.
    pub fn select_many<S: AsRef<str>>(&self, filters: &[S]) -> Vec<Arc<Experiment>> {
        let mut lowered: Vec<String> = Vec::new();
        for f in filters {
            let f = f.as_ref();
            if let Some(path) = f.strip_prefix("failed:") {
                // Paths stay case-sensitive; the slugs read from the
                // manifest fold like ordinary slug filters.
                lowered.extend(Self::failed_slugs(path).iter().map(|s| s.to_lowercase()));
            } else {
                lowered.push(f.to_lowercase());
            }
        }
        self.experiments
            .iter()
            .filter(|e| lowered.iter().any(|f| Self::matches(e, f)))
            .cloned()
            .collect()
    }

    /// Slugs a prior manifest recorded as failed or timed out. `path`
    /// may name the artifact directory or the manifest file itself;
    /// empty means [`DEFAULT_ARTIFACT_DIR`].
    fn failed_slugs(path: &str) -> Vec<String> {
        let p = if path.is_empty() {
            Path::new(DEFAULT_ARTIFACT_DIR)
        } else {
            Path::new(path)
        };
        let manifest = if p.is_dir() {
            p.join("manifest.json")
        } else {
            p.to_path_buf()
        };
        ResumeState::load_manifest(&manifest)
            .map(|s| s.failed)
            .unwrap_or_default()
    }

    /// Whether one already-lowercased filter selects `e`.
    fn matches(e: &Experiment, filter: &str) -> bool {
        if let Some(tag) = filter.strip_prefix("tag:") {
            return e.tags.iter().any(|t| t.to_lowercase() == tag);
        }
        if let Some(class) = filter.strip_prefix("stride:") {
            return e.strides.iter().any(|s| s.to_lowercase() == class);
        }
        e.id.to_lowercase() == filter || e.slug.to_lowercase() == filter
    }

    /// Unique group ids, in first-registration order (the "available
    /// ids" list for error messages).
    pub fn group_ids(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for e in &self.experiments {
            if !out.contains(&e.id) {
                out.push(e.id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ArtifactStore, ExperimentRecord, RunManifest};

    fn dummy(id: &'static str, slug: &'static str) -> Experiment {
        dummy_tagged(id, slug, &[])
    }

    fn dummy_tagged(
        id: &'static str,
        slug: &'static str,
        tags: &'static [&'static str],
    ) -> Experiment {
        Experiment::new(id, slug, "t", tags, Cost::Cheap, |_| {
            Table::new("X", "t", &["a"])
        })
    }

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.register(
            dummy_tagged("E1", "e1-depth", &["campaign", "parallel"])
                .with_strides(&["spoofing", "tampering"]),
        );
        r.register(
            dummy_tagged("E10", "e10-cascade", &["sos", "parallel"])
                .with_strides(&["denial-of-service"]),
        );
        r.register(dummy_tagged("E10", "e10-structure", &["sos"]));
        r
    }

    #[test]
    fn select_is_exact_not_substring() {
        let r = sample();
        // The old binary's `contains` filter made "E1" match E10 too.
        let hits = r.select("E1");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].slug, "e1-depth");
        assert_eq!(r.select("E10").len(), 2);
    }

    #[test]
    fn select_is_case_insensitive_and_takes_slugs() {
        let r = sample();
        assert_eq!(r.select("e10").len(), 2);
        assert_eq!(r.select("E10-CASCADE").len(), 1);
        assert!(r.select("e99").is_empty());
    }

    #[test]
    fn tag_prefix_selects_by_tag() {
        let r = sample();
        assert_eq!(r.select("tag:parallel").len(), 2);
        assert_eq!(r.select("tag:sos").len(), 2);
        assert_eq!(r.select("tag:campaign").len(), 1);
        assert_eq!(r.select("TAG:PARALLEL").len(), 2, "case-insensitive");
        assert!(r.select("tag:nope").is_empty());
        // The tag namespace never collides with ids/slugs.
        assert!(r.select("tag:e1-depth").is_empty());
        assert_eq!(r.select("e1-depth").len(), 1);
    }

    #[test]
    fn stride_prefix_selects_by_class() {
        let r = sample();
        assert_eq!(r.select("stride:spoofing").len(), 1);
        assert_eq!(r.select("stride:tampering").len(), 1);
        assert_eq!(r.select("stride:denial-of-service").len(), 1);
        assert_eq!(r.select("STRIDE:SPOOFING").len(), 1, "case-insensitive");
        assert!(r.select("stride:repudiation").is_empty());
        // Unannotated experiments never match any stride filter.
        assert!(r
            .select("stride:spoofing")
            .iter()
            .all(|e| e.slug != "e10-structure"));
        // The stride namespace never collides with tags.
        assert!(r.select("stride:parallel").is_empty());
        assert!(r.select("tag:spoofing").is_empty());
    }

    #[test]
    fn select_many_dedupes_overlapping_filters() {
        let r = sample();
        // "tag:parallel" and the explicit slug both match e1-depth; it
        // must still be selected exactly once.
        let hits = r.select_many(&["tag:parallel", "e1-depth"]);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].slug, "e1-depth");
        assert_eq!(hits[1].slug, "e10-cascade");
        // Same filter twice is also a single selection.
        assert_eq!(r.select_many(&["E10", "e10"]).len(), 2);
        // An id plus one of its slugs: the slug's experiment once, the
        // sibling once.
        let hits = r.select_many(&["E10", "e10-structure"]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn select_many_keeps_registration_order() {
        let r = sample();
        // Filters listed in "reverse" order must not reorder results.
        let hits = r.select_many(&["e10-structure", "e1-depth"]);
        let slugs: Vec<&str> = hits.iter().map(|e| e.slug).collect();
        assert_eq!(slugs, vec!["e1-depth", "e10-structure"]);
    }

    #[test]
    fn select_many_empty_filter_list_selects_nothing() {
        let r = sample();
        assert!(r.select_many::<&str>(&[]).is_empty());
    }

    #[test]
    fn failed_pseudo_filter_reselects_manifest_failures() {
        let dir = std::env::temp_dir().join("autosec-runner-failed-filter");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::create(&dir).expect("create dir");
        let manifest = RunManifest {
            seed: 42,
            jobs: 1,
            trials_scale: 1.0,
            filter: None,
            records: vec![
                ExperimentRecord::ok(
                    "e10-structure",
                    "E10",
                    std::time::Duration::ZERO,
                    Table::new("E10", "t", &["a"]),
                ),
                ExperimentRecord::failed(
                    "e1-depth",
                    "E1",
                    std::time::Duration::ZERO,
                    "boom".into(),
                ),
                ExperimentRecord::timed_out(
                    "e10-cascade",
                    "E10",
                    std::time::Duration::from_secs(2),
                    std::time::Duration::from_secs(1),
                    false,
                ),
            ],
        };
        store.write_run(&manifest).expect("write");

        let r = sample();
        // Directory form, manifest-file form, and mixing with a normal
        // filter (dedup keeps registration order).
        let dir_filter = format!("failed:{}", dir.display());
        let hits = r.select(&dir_filter);
        let slugs: Vec<&str> = hits.iter().map(|e| e.slug).collect();
        assert_eq!(slugs, vec!["e1-depth", "e10-cascade"]);

        let file_filter = format!("failed:{}", dir.join("manifest.json").display());
        assert_eq!(r.select(&file_filter).len(), 2);

        let hits = r.select_many(&[dir_filter.as_str(), "e1-depth"]);
        assert_eq!(hits.len(), 2, "overlap dedupes");

        // Unreadable manifests select nothing rather than erroring.
        assert!(r.select("failed:/nonexistent/path").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_ids_are_unique_in_order() {
        assert_eq!(sample().group_ids(), vec!["E1", "E10"]);
    }

    #[test]
    #[should_panic(expected = "duplicate experiment slug")]
    fn duplicate_slug_rejected() {
        let mut r = sample();
        r.register(dummy("E2", "e1-depth"));
    }

    #[test]
    fn run_produces_table() {
        let r = sample();
        let t = r.select("E1")[0].run(&RunCtx::default());
        assert_eq!(t.id, "X");
    }

    #[test]
    fn deadlines_grow_with_cost() {
        assert!(Cost::Cheap.deadline() < Cost::Moderate.deadline());
        assert!(Cost::Moderate.deadline() < Cost::Heavy.deadline());
    }

    #[test]
    fn cpu_budget_scales_with_jobs() {
        assert_eq!(Cost::Cheap.cpu_budget_secs(1), 30);
        assert_eq!(Cost::Cheap.cpu_budget_secs(4), 120);
        assert_eq!(Cost::Heavy.cpu_budget_secs(2), 1200);
        assert_eq!(Cost::Cheap.cpu_budget_secs(0), 30, "jobs clamped to 1");
    }
}
