//! The rendered experiment table and its canonical JSON codec.

use serde_json::{json, Map, Value};

/// A rendered experiment table.
///
/// `id`/`title` are owned strings so a table can round-trip through
/// its JSON artifact — the process-isolated suite runner parses a
/// worker child's artifact back into the parent's records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment group id, e.g. `"E2"` (shared by related tables).
    pub id: String,
    /// Title (paper anchor).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from string-convertible headers.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Explicit JSON serializer (headers and rows as string arrays).
    ///
    /// The output is canonical: object keys are sorted, so the same
    /// table always renders to the same bytes.
    pub fn to_json(&self) -> Value {
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|r| Value::Array(r.iter().map(|c| Value::from(c.as_str())).collect()))
            .collect();
        json!({
            "id": (self.id.clone()),
            "title": (self.title.clone()),
            "headers": (self.headers.clone()),
            "rows": rows,
        })
    }

    /// Row data parsed back from [`Self::to_json`] output.
    ///
    /// Returns the dynamic parts only: `(headers, rows)`. `None` on any
    /// shape mismatch.
    pub fn rows_from_json(v: &Value) -> Option<(Vec<String>, Vec<Vec<String>>)> {
        let headers = string_array(v.get("headers")?)?;
        let rows = v
            .get("rows")?
            .as_array()?
            .iter()
            .map(string_array)
            .collect::<Option<Vec<_>>>()?;
        Some((headers, rows))
    }

    /// Full table parsed back from [`Self::to_json`] output.
    ///
    /// Used by the process-isolated runner to reconstruct a worker
    /// child's result from its handoff artifact. `None` on any shape
    /// mismatch.
    pub fn from_json(v: &Value) -> Option<Table> {
        let id = v.get("id")?.as_str()?.to_owned();
        let title = v.get("title")?.as_str()?.to_owned();
        let (headers, rows) = Self::rows_from_json(v)?;
        Some(Table {
            id,
            title,
            headers,
            rows,
        })
    }
}

fn string_array(v: &Value) -> Option<Vec<String>> {
    v.as_array()?
        .iter()
        .map(|c| c.as_str().map(str::to_owned))
        .collect()
}

/// Convenience: a sorted-key JSON object from `(key, value)` pairs.
pub(crate) fn sorted_object(pairs: Vec<(&str, Value)>) -> Value {
    let mut map = Map::new();
    for (k, v) in pairs {
        map.insert(k.to_owned(), v);
    }
    Value::Object(map)
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:<w$}  ", h, w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{}  ", "-".repeat(widths[i]))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:<w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("EX", "demo", &["a", "long-header"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("EX"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("EX", "demo", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new("EX", "demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "x".into()]);
        t.push_row(vec!["2".into(), "y".into()]);
        let v = t.to_json();
        assert_eq!(v["id"].as_str(), Some("EX"));
        let (headers, rows) = Table::rows_from_json(&v).expect("well-formed");
        assert_eq!(headers, t.headers);
        assert_eq!(rows, t.rows);
        let full = Table::from_json(&v).expect("well-formed");
        assert_eq!(full, t);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Table::from_json(&json!({"id": "EX"})).is_none());
        assert!(
            Table::from_json(&json!({"id": 3, "title": "t", "headers": [], "rows": []})).is_none()
        );
        assert!(Table::from_json(
            &json!({"id": "EX", "title": "t", "headers": ["a"], "rows": [[1]]})
        )
        .is_none());
    }

    #[test]
    fn json_is_byte_stable() {
        let mut t = Table::new("EX", "demo", &["a"]);
        t.push_row(vec!["1".into()]);
        assert_eq!(t.to_json().to_string(), t.to_json().to_string());
    }
}
