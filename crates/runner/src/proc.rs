//! Process-level supervision: real kills and resource budgets.
//!
//! PR 5's in-process supervision cannot reclaim an overtime worker —
//! Rust offers no safe way to kill a thread, so the suite merely stops
//! *waiting* and the detached worker keeps burning CPU/RAM inside the
//! suite process. This module gives deadlines teeth by moving
//! execution into a spawned child process (the `experiments` binary
//! re-invoked with a hidden `--worker-one <slug>` mode):
//!
//! - a deadline breach SIGKILLs the child for real;
//! - a **peak-RSS budget** is enforced by parent-side polling of
//!   `/proc/<pid>/status` (`VmHWM`), with an `RLIMIT_AS` backstop
//!   applied inside the child;
//! - a **CPU-seconds budget** is enforced by polling
//!   `/proc/<pid>/stat` (`utime + stime`), with an `RLIMIT_CPU`
//!   backstop.
//!
//! The parent-side poll is the primary classifier (it knows *which*
//! budget tripped); the rlimits only matter if the supervising parent
//! itself dies. Results come back through the ordinary
//! [`ArtifactStore`](crate::ArtifactStore) JSON handoff, so healthy
//! artifacts are bit-identical to in-process execution by
//! construction.
//!
//! [`retry_delay`] computes the `--retries` backoff schedule from the
//! run's own seeded substream: a pure function of
//! `(seed, slug, attempt)`, so the schedule is deterministic and
//! jobs-invariant — the property E26 pins in CI.

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use autosec_sim::SimRng;
use rand::RngCore;

/// Where suite entries execute (`--isolate on|off|auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolateMode {
    /// Every entry runs in a supervised child process.
    On,
    /// Every entry runs in-process on a supervised thread (PR 5
    /// behavior; overtime workers are detached, not killed).
    Off,
    /// `On` iff a resource budget was requested, else `Off`.
    #[default]
    Auto,
}

impl IsolateMode {
    /// Parses the `--isolate` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "on" => Some(IsolateMode::On),
            "off" => Some(IsolateMode::Off),
            "auto" => Some(IsolateMode::Auto),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            IsolateMode::On => "on",
            IsolateMode::Off => "off",
            IsolateMode::Auto => "auto",
        }
    }
}

/// Per-experiment resource ceilings for a supervised child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudgets {
    /// Peak resident-set ceiling in MiB (`--rss-limit-mb`); `None`
    /// leaves memory unbudgeted.
    pub rss_limit_mb: Option<u64>,
    /// CPU-seconds ceiling (`--cpu-limit-secs`); `None` lets the suite
    /// derive one from the experiment's [`Cost`](crate::Cost) deadline.
    pub cpu_limit_secs: Option<u64>,
}

impl ResourceBudgets {
    /// Whether any budget was requested.
    pub fn any(&self) -> bool {
        self.rss_limit_mb.is_some() || self.cpu_limit_secs.is_some()
    }
}

/// How to re-invoke the experiments binary as a single-experiment
/// worker.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// The binary (normally `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Context flags every worker needs (`--seed`, `--jobs`,
    /// `--trials-scale`).
    pub base_args: Vec<String>,
}

impl WorkerSpec {
    /// The command line for one worker: base args plus
    /// `--worker-one <slug> --out <handoff>` and the budget flags the
    /// child should turn into rlimit backstops.
    pub fn command(&self, slug: &str, handoff_dir: &Path, budgets: ResourceBudgets) -> Command {
        let mut cmd = Command::new(&self.exe);
        cmd.args(&self.base_args);
        cmd.arg("--worker-one").arg(slug);
        cmd.arg("--out").arg(handoff_dir);
        if let Some(mb) = budgets.rss_limit_mb {
            cmd.arg("--rss-limit-mb").arg(mb.to_string());
        }
        if let Some(secs) = budgets.cpu_limit_secs {
            cmd.arg("--cpu-limit-secs").arg(secs.to_string());
        }
        cmd.stdin(Stdio::null());
        cmd
    }
}

/// Why the supervisor killed a child.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KillReason {
    /// The soft deadline elapsed.
    Deadline,
    /// Peak RSS crossed the budget.
    Rss {
        /// Peak resident set observed (MiB).
        peak_mb: u64,
        /// The budget in force (MiB).
        limit_mb: u64,
    },
    /// Accumulated CPU time crossed the budget.
    Cpu {
        /// CPU seconds observed (utime + stime).
        used_secs: f64,
        /// The budget in force (seconds).
        limit_secs: u64,
    },
}

/// What [`supervise`] observed about one child.
#[derive(Debug)]
pub struct ProcOutcome {
    /// Wall-clock time from spawn to exit or kill.
    pub elapsed: Duration,
    /// Peak resident set observed via `/proc` polling (MiB; 0 when the
    /// child exited before the first poll or off Linux).
    pub peak_rss_mb: u64,
    /// CPU seconds observed via `/proc` polling.
    pub cpu_secs: f64,
    /// `Some` when the supervisor killed the child (and why).
    pub killed: Option<KillReason>,
    /// The child's own exit status; `None` when the supervisor killed
    /// it.
    pub exit: Option<ExitStatus>,
}

/// How often the supervisor polls `try_wait` and `/proc`.
pub const POLL_INTERVAL: Duration = Duration::from_millis(15);

/// Spawns `cmd` and supervises it until natural exit or a budget kill.
///
/// The kill is a real SIGKILL (`Child::kill`), so a hung or leaking
/// child is actually reclaimed — unlike the in-process fallback, which
/// can only detach its worker thread.
pub fn supervise(
    cmd: &mut Command,
    deadline: Duration,
    budgets: ResourceBudgets,
) -> io::Result<ProcOutcome> {
    let start = Instant::now();
    let mut child = cmd.spawn()?;
    let pid = child.id();
    let mut peak_rss_mb = 0u64;
    let mut cpu_secs = 0f64;
    let killed = loop {
        if let Some(status) = child.try_wait()? {
            return Ok(ProcOutcome {
                elapsed: start.elapsed(),
                peak_rss_mb,
                cpu_secs,
                killed: None,
                exit: Some(status),
            });
        }
        if let Some(mb) = probe_peak_rss_mb(pid) {
            peak_rss_mb = peak_rss_mb.max(mb);
        }
        if let Some(secs) = probe_cpu_secs(pid) {
            cpu_secs = cpu_secs.max(secs);
        }
        if let Some(limit) = budgets.rss_limit_mb {
            if peak_rss_mb >= limit {
                break KillReason::Rss {
                    peak_mb: peak_rss_mb,
                    limit_mb: limit,
                };
            }
        }
        if let Some(limit) = budgets.cpu_limit_secs {
            if cpu_secs >= limit as f64 {
                break KillReason::Cpu {
                    used_secs: cpu_secs,
                    limit_secs: limit,
                };
            }
        }
        if start.elapsed() >= deadline {
            break KillReason::Deadline;
        }
        std::thread::sleep(POLL_INTERVAL);
    };
    // SIGKILL cannot be caught or ignored; wait() reaps the zombie.
    let _ = child.kill();
    let _ = child.wait();
    Ok(ProcOutcome {
        elapsed: start.elapsed(),
        peak_rss_mb,
        cpu_secs,
        killed: Some(killed),
        exit: None,
    })
}

/// Peak resident set of a live process in MiB (`VmHWM`, falling back
/// to `VmRSS`), rounded up. `None` off Linux or once the process is
/// gone.
#[cfg(target_os = "linux")]
pub fn probe_peak_rss_mb(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    for key in ["VmHWM:", "VmRSS:"] {
        if let Some(line) = status.lines().find(|l| l.starts_with(key)) {
            let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
            return Some(kb.div_ceil(1024));
        }
    }
    None
}

/// See the Linux implementation; always `None` elsewhere.
#[cfg(not(target_os = "linux"))]
pub fn probe_peak_rss_mb(_pid: u32) -> Option<u64> {
    None
}

/// Accumulated CPU seconds (`utime + stime` from `/proc/<pid>/stat`).
/// `None` off Linux or once the process is gone.
#[cfg(target_os = "linux")]
pub fn probe_cpu_secs(pid: u32) -> Option<f64> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // The comm field may contain spaces and parentheses; everything
    // after the *last* ')' is whitespace-delimited. Fields 14/15
    // (1-indexed) are utime/stime, i.e. indices 11/12 after the split.
    let rest = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / clock_ticks_per_sec())
}

/// See the Linux implementation; always `None` elsewhere.
#[cfg(not(target_os = "linux"))]
pub fn probe_cpu_secs(_pid: u32) -> Option<f64> {
    None
}

#[cfg(target_os = "linux")]
fn clock_ticks_per_sec() -> f64 {
    // std already links libc on Linux; no libc crate is vendored, so
    // declare the one symbol we need directly.
    extern "C" {
        fn sysconf(name: i32) -> i64;
    }
    const SC_CLK_TCK: i32 = 2;
    let hz = unsafe { sysconf(SC_CLK_TCK) };
    if hz > 0 {
        hz as f64
    } else {
        100.0
    }
}

/// Installs rlimit backstops inside a worker child. The parent's
/// `/proc` polling is the primary enforcement (it classifies *which*
/// budget tripped); these only bite if the parent dies.
#[cfg(target_os = "linux")]
pub fn apply_worker_rlimits(budgets: ResourceBudgets) {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    const RLIMIT_CPU: i32 = 0;
    const RLIMIT_AS: i32 = 9;
    if let Some(secs) = budgets.cpu_limit_secs {
        // A little above the parent's ceiling so the parent classifies
        // the breach first (SIGXCPU at cur, SIGKILL at max).
        let lim = RLimit {
            cur: secs + 2,
            max: secs + 5,
        };
        unsafe { setrlimit(RLIMIT_CPU, &lim) };
    }
    if let Some(mb) = budgets.rss_limit_mb {
        // Address space overshoots resident size by a wide margin
        // (mappings, guard pages, arenas), so the backstop is generous.
        let bytes = (mb * 4 + 512) * 1024 * 1024;
        let lim = RLimit {
            cur: bytes,
            max: bytes,
        };
        unsafe { setrlimit(RLIMIT_AS, &lim) };
    }
}

/// No-op off Linux: budgets degrade to parent-side polling only (and
/// off Linux the probes return `None`, so only deadlines bite).
#[cfg(not(target_os = "linux"))]
pub fn apply_worker_rlimits(_budgets: ResourceBudgets) {}

/// Where a worker child records a panic message for the parent
/// (`<handoff>/<slug>.panic.txt`). The parent folds it into the
/// ordinary `failed` manifest entry, preserving the panic-message
/// contract of in-process execution.
pub fn worker_failure_path(handoff_dir: &Path, slug: &str) -> PathBuf {
    handoff_dir.join(format!("{slug}.panic.txt"))
}

/// Smallest backoff step (attempt 0 averages one base).
pub const RETRY_BASE: Duration = Duration::from_millis(100);
/// Backoff ceiling regardless of attempt count.
pub const RETRY_CAP: Duration = Duration::from_secs(5);

/// The backoff before re-running `slug` after failed attempt
/// `attempt` (0-based): `RETRY_BASE · 2^attempt · (0.5 + u)` with
/// `u ∈ [0, 1)` drawn from the run's own seeded substream, capped at
/// [`RETRY_CAP`].
///
/// A pure function of `(seed, slug, attempt)` — never of wall clock,
/// thread timing, or `--jobs` — so a retry schedule is reproducible
/// across machines and parallelism levels.
pub fn retry_delay(seed: u64, slug: &str, attempt: u32) -> Duration {
    let base_ms = RETRY_BASE.as_millis() as u64 * (1u64 << attempt.min(16));
    let mut rng = SimRng::seed(seed)
        .fork("suite/retry")
        .fork(slug)
        .fork_idx(u64::from(attempt));
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    let jittered = (base_ms as f64 * (0.5 + unit)).round() as u64;
    Duration::from_millis(jittered).min(RETRY_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut cmd = Command::new("/bin/sh");
        cmd.arg("-c").arg(script).stdin(Stdio::null());
        cmd
    }

    #[test]
    fn isolate_mode_parses() {
        assert_eq!(IsolateMode::parse("on"), Some(IsolateMode::On));
        assert_eq!(IsolateMode::parse("off"), Some(IsolateMode::Off));
        assert_eq!(IsolateMode::parse("auto"), Some(IsolateMode::Auto));
        assert_eq!(IsolateMode::parse("ON"), None);
        assert_eq!(IsolateMode::parse(""), None);
        for m in [IsolateMode::On, IsolateMode::Off, IsolateMode::Auto] {
            assert_eq!(IsolateMode::parse(m.as_str()), Some(m));
        }
    }

    #[test]
    fn worker_command_carries_handoff_and_budgets() {
        let spec = WorkerSpec {
            exe: PathBuf::from("/bin/echo"),
            base_args: vec!["--seed".into(), "7".into()],
        };
        let budgets = ResourceBudgets {
            rss_limit_mb: Some(64),
            cpu_limit_secs: Some(9),
        };
        let cmd = spec.command("e1-depth", Path::new("/tmp/handoff"), budgets);
        let args: Vec<String> = cmd
            .get_args()
            .map(|a| a.to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            args,
            vec![
                "--seed",
                "7",
                "--worker-one",
                "e1-depth",
                "--out",
                "/tmp/handoff",
                "--rss-limit-mb",
                "64",
                "--cpu-limit-secs",
                "9",
            ]
        );
        let lean = spec.command(
            "e1-depth",
            Path::new("/tmp/handoff"),
            ResourceBudgets::default(),
        );
        assert_eq!(
            lean.get_args().count(),
            6,
            "no budget flags when unbudgeted"
        );
    }

    #[cfg(unix)]
    #[test]
    fn supervise_reports_natural_exit() {
        let out = supervise(
            &mut sh("exit 0"),
            Duration::from_secs(10),
            ResourceBudgets::default(),
        )
        .expect("spawn");
        assert!(out.killed.is_none());
        assert!(out.exit.expect("exited").success());

        let out = supervise(
            &mut sh("exit 3"),
            Duration::from_secs(10),
            ResourceBudgets::default(),
        )
        .expect("spawn");
        assert!(out.killed.is_none());
        assert_eq!(out.exit.expect("exited").code(), Some(3));
    }

    #[cfg(unix)]
    #[test]
    fn supervise_kills_on_deadline_for_real() {
        let start = Instant::now();
        let out = supervise(
            &mut sh("sleep 30"),
            Duration::from_millis(200),
            ResourceBudgets::default(),
        )
        .expect("spawn");
        assert_eq!(out.killed, Some(KillReason::Deadline));
        assert!(out.exit.is_none());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "kill must be prompt, not a 30s wait"
        );
        assert!(out.elapsed >= Duration::from_millis(200));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn supervise_kills_on_cpu_budget() {
        let start = Instant::now();
        let out = supervise(
            &mut sh("while :; do :; done"),
            Duration::from_secs(60),
            ResourceBudgets {
                rss_limit_mb: None,
                cpu_limit_secs: Some(1),
            },
        )
        .expect("spawn");
        match out.killed {
            Some(KillReason::Cpu {
                used_secs,
                limit_secs,
            }) => {
                assert_eq!(limit_secs, 1);
                assert!(used_secs >= 1.0);
            }
            other => panic!("expected cpu kill, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn supervise_kills_on_rss_budget() {
        // Shell string doubling leaks memory exponentially fast.
        let out = supervise(
            &mut sh("x=xxxxxxxxxxxxxxxx; while :; do x=\"$x$x\"; done"),
            Duration::from_secs(60),
            ResourceBudgets {
                rss_limit_mb: Some(48),
                cpu_limit_secs: None,
            },
        )
        .expect("spawn");
        match out.killed {
            Some(KillReason::Rss { peak_mb, limit_mb }) => {
                assert_eq!(limit_mb, 48);
                assert!(peak_mb >= 48);
            }
            other => panic!("expected rss kill, got {other:?}"),
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn probes_read_our_own_process() {
        let pid = std::process::id();
        let rss = probe_peak_rss_mb(pid).expect("own status readable");
        assert!(rss >= 1, "a live Rust test process uses at least 1 MiB");
        let cpu = probe_cpu_secs(pid).expect("own stat readable");
        assert!(cpu >= 0.0);
        assert!(probe_peak_rss_mb(u32::MAX - 1).is_none(), "dead pid");
    }

    #[test]
    fn retry_delay_is_deterministic_and_jittered() {
        let a = retry_delay(42, "e1-depth", 0);
        assert_eq!(a, retry_delay(42, "e1-depth", 0), "pure function");
        // Jitter keeps attempt 0 within [0.5, 1.5) bases.
        assert!(a >= RETRY_BASE / 2 && a < RETRY_BASE * 3 / 2, "{a:?}");
        // Different slugs and seeds decorrelate.
        assert_ne!(retry_delay(42, "e1-depth", 0), retry_delay(42, "e2-lrp", 0));
        assert_ne!(
            retry_delay(42, "e1-depth", 0),
            retry_delay(43, "e1-depth", 0)
        );
    }

    #[test]
    fn retry_delay_backs_off_exponentially_and_caps() {
        for attempt in 0..10 {
            let d = retry_delay(7, "x", attempt);
            let base = RETRY_BASE * 2u32.pow(attempt.min(16));
            assert!(d >= (base / 2).min(RETRY_CAP), "attempt {attempt}: {d:?}");
            assert!(
                d <= RETRY_CAP.max(base * 3 / 2).min(RETRY_CAP),
                "attempt {attempt}: {d:?}"
            );
        }
        // By attempt 7 the un-jittered base (12.8 s) is past the cap.
        assert_eq!(retry_delay(7, "x", 7), RETRY_CAP);
        assert_eq!(retry_delay(7, "x", 30), RETRY_CAP, "shift never overflows");
    }
}
