//! # autosec-runner
//!
//! The experiment-execution engine: a registry of experiments with
//! metadata, a work-stealing thread pool, deterministic parallel
//! Monte-Carlo helpers, and JSON run artifacts.
//!
//! ## Determinism contract
//!
//! Every parallel helper in this crate maps trial `i` to the RNG
//! stream `base.fork_idx(i)` and merges results **in trial order**, so
//! the output of a run is a pure function of `(seed, trial count)` —
//! bit-identical for any `--jobs N`, including `N = 1`. The thread
//! pool only decides *which worker* executes a trial, never *what* the
//! trial computes or where its result lands.
//!
//! ## Layout
//!
//! - [`Table`] — the rendered experiment table (moved here from
//!   `autosec-bench` so the engine can serialize results without
//!   depending on the experiment implementations).
//! - [`Experiment`] / [`Registry`] — experiments as data: id, slug,
//!   title, tags, cost class, and a closure producing a [`Table`].
//! - [`RunCtx`] — seed + job count handed to every experiment.
//! - [`WorkStealingPool`] — index-claiming pool used by [`par_trials`].
//! - [`par_trials`] / [`par_trials_fold`] — deterministic parallel
//!   Monte-Carlo sweeps.
//! - [`artifact`] — run manifest + per-experiment JSON artifacts.

pub mod artifact;
pub mod ctx;
pub mod par;
pub mod pool;
pub mod registry;
pub mod table;

pub use artifact::DEFAULT_ARTIFACT_DIR;
pub use artifact::{strip_durations, strip_volatile, ArtifactStore, ExperimentRecord, RunManifest};
pub use ctx::{RunCtx, DEFAULT_SEED};
pub use par::{par_trials, par_trials_fold};
pub use pool::WorkStealingPool;
pub use registry::{Cost, Experiment, Registry};
pub use table::Table;
