//! # autosec-runner
//!
//! The experiment-execution engine: a registry of experiments with
//! metadata, a work-stealing thread pool, deterministic parallel
//! Monte-Carlo helpers, and JSON run artifacts.
//!
//! ## Determinism contract
//!
//! Every parallel helper in this crate maps trial `i` to the RNG
//! stream `base.fork_idx(i)` and merges results **in trial order**, so
//! the output of a run is a pure function of `(seed, trial count)` —
//! bit-identical for any `--jobs N`, including `N = 1`. The thread
//! pool only decides *which worker* executes a trial, never *what* the
//! trial computes or where its result lands.
//!
//! ## Layout
//!
//! - [`Table`] — the rendered experiment table (moved here from
//!   `autosec-bench` so the engine can serialize results without
//!   depending on the experiment implementations).
//! - [`Experiment`] / [`Registry`] — experiments as data: id, slug,
//!   title, tags, cost class, and a closure producing a [`Table`].
//! - [`RunCtx`] — seed + job count handed to every experiment.
//! - [`WorkStealingPool`] — index-claiming pool used by [`par_trials`].
//! - [`par_trials`] / [`par_trials_fold`] — deterministic parallel
//!   Monte-Carlo sweeps; the `try_` variants quarantine panicking
//!   trials as [`TrialOutcome`]s instead of unwinding.
//! - [`suite`] — the fault-tolerant suite runner: per-experiment
//!   `catch_unwind`, cost-derived soft deadlines, keep-going
//!   degradation, seeded retry backoff, and resume skip sets.
//! - [`proc`] — process-level supervision: suite entries in spawned
//!   worker children that deadlines SIGKILL for real, with peak-RSS
//!   and CPU-seconds budgets enforced by `/proc` polling plus rlimit
//!   backstops.
//! - [`artifact`] — run manifest + per-experiment JSON artifacts, with
//!   per-entry statuses and [`ResumeState`] for `--resume`.
//!
//! ## Fault-tolerance contract
//!
//! Failure handling is as deterministic as success: a panicking trial
//! is quarantined into the same slot with the same message for every
//! `--jobs` value, a panicking experiment never perturbs its
//! neighbors' RNG streams, a resumed run reuses artifacts only when
//! `(seed, trials-scale, filter set)` all match, and the retry
//! backoff schedule is a pure function of `(seed, slug, attempt)` —
//! see [`proc::retry_delay`].

pub mod artifact;
pub mod ctx;
pub mod par;
pub mod pool;
pub mod proc;
pub mod registry;
pub mod suite;
pub mod table;

pub use artifact::DEFAULT_ARTIFACT_DIR;
pub use artifact::{
    normalize_filters, strip_durations, strip_volatile, ArtifactStore, ExperimentRecord,
    ResumeState, RunManifest, RunStatus,
};
pub use ctx::{RunCtx, DEFAULT_SEED};
pub use par::{
    panic_message, par_trials, par_trials_fold, silence_panics, try_par_trials,
    try_par_trials_fold, TrialOutcome,
};
pub use pool::WorkStealingPool;
pub use proc::{
    apply_worker_rlimits, retry_delay, worker_failure_path, IsolateMode, ResourceBudgets,
    WorkerSpec,
};
pub use registry::{Cost, Experiment, Registry};
pub use suite::{run_suite, Isolation, SuiteOptions, SuiteReport};
pub use table::Table;
