//! Deterministic parallel Monte-Carlo helpers.
//!
//! Trial `i` always computes on the stream `base.fork_idx(i)` and its
//! result lands in slot `i`; the merge happens in slot order. The
//! worker count therefore changes wall-clock time and nothing else.
//!
//! ## Fault tolerance
//!
//! Every helper runs each trial under [`std::panic::catch_unwind`], so
//! a panicking trial can never poison another trial's slot or leak a
//! generic "a scoped thread panicked" message:
//!
//! - [`par_trials`] / [`par_trials_fold`] **propagate** the original
//!   panic payload of the lowest-index panicking trial (all trials are
//!   still attempted first, so the choice is identical for every
//!   `jobs` value).
//! - [`try_par_trials`] / [`try_par_trials_fold`] **quarantine**:
//!   each slot becomes a [`TrialOutcome`] (`Ok` or `Panicked`), in
//!   trial order, bit-identical for every `jobs` value.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once, PoisonError};

use autosec_sim::SimRng;

use crate::pool::WorkStealingPool;

/// The quarantined result of one Monte-Carlo trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialOutcome<T> {
    /// The trial completed and produced a value.
    Ok(T),
    /// The trial panicked; `message` is the rendered panic payload.
    Panicked {
        /// The panic payload, rendered to a string (`&str`/`String`
        /// payloads verbatim, anything else a fixed placeholder).
        message: String,
    },
}

impl<T> TrialOutcome<T> {
    /// The value, if the trial completed.
    pub fn ok(self) -> Option<T> {
        match self {
            TrialOutcome::Ok(v) => Some(v),
            TrialOutcome::Panicked { .. } => None,
        }
    }

    /// Whether the trial completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, TrialOutcome::Ok(_))
    }

    /// The panic message, if the trial was quarantined.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            TrialOutcome::Ok(_) => None,
            TrialOutcome::Panicked { message } => Some(message),
        }
    }
}

/// Renders a caught panic payload the way the default hook would:
/// `&str` and `String` payloads verbatim, anything else a placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Number of active panic-silencing guards (see [`silence_panics`]).
static SILENCE_DEPTH: AtomicUsize = AtomicUsize::new(0);
static SILENCE_HOOK: Once = Once::new();

/// Suppresses the default panic-hook output while the returned guard is
/// alive. Used around *quarantining* runs, where every panic is caught,
/// rendered into its [`TrialOutcome`] or manifest entry, and reported
/// there — printing each one to stderr would only drown the output.
///
/// The suppression is process-global (the hook is shared state), so an
/// unrelated panic on another thread is also silenced while a guard is
/// alive; it still unwinds normally, only the printing is skipped.
/// Propagating paths ([`par_trials`]) take no guard, so their panics
/// print at the original site as usual.
pub fn silence_panics() -> SilenceGuard {
    SILENCE_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SILENCE_DEPTH.load(Ordering::SeqCst) == 0 {
                prev(info);
            }
        }));
    });
    SILENCE_DEPTH.fetch_add(1, Ordering::SeqCst);
    SilenceGuard(())
}

/// RAII guard from [`silence_panics`]; panic printing resumes when the
/// last live guard drops.
#[derive(Debug)]
pub struct SilenceGuard(());

impl Drop for SilenceGuard {
    fn drop(&mut self) {
        SILENCE_DEPTH.fetch_sub(1, Ordering::SeqCst);
    }
}

type Caught<T> = Result<T, Box<dyn Any + Send>>;

/// Runs every trial under `catch_unwind` and returns the raw results in
/// trial order. Both the serial and the parallel path attempt **all**
/// `n` trials — a panic never prevents later trials from running — so
/// quarantine and propagation decisions are identical for every `jobs`
/// value.
fn run_caught<T, F>(jobs: usize, n: usize, base: &SimRng, trial: F) -> Vec<Caught<T>>
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
{
    let pool = WorkStealingPool::new(jobs);
    let caught = |i: usize| catch_unwind(AssertUnwindSafe(|| trial(i, base.fork_idx(i as u64))));
    if pool.jobs() == 1 || n <= 1 {
        return (0..n).map(caught).collect();
    }

    let slots: Vec<Mutex<Option<Caught<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool.execute(n, |i| {
        // The trial runs (and may unwind) before the slot lock is
        // taken, so a panicking trial cannot poison any slot; the
        // recovery below is pure defense in depth.
        let out = caught(i);
        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every slot filled")
        })
        .collect()
}

/// Runs `n` independent trials, trial `i` on `base.fork_idx(i)`, and
/// returns the results **in trial order**.
///
/// Bit-identical output for every `jobs` value, including 1.
///
/// # Panics
///
/// If any trial panics, all trials are still attempted and then the
/// **original payload of the lowest-index panicking trial** is
/// re-thrown via [`resume_unwind`] — the same payload for every `jobs`
/// value, never a synthetic "slot poisoned" or "a scoped thread
/// panicked" message.
pub fn par_trials<T, F>(jobs: usize, n: usize, base: &SimRng, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
{
    let mut out = Vec::with_capacity(n);
    for result in run_caught(jobs, n, base, trial) {
        match result {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// The quarantining variant of [`par_trials`]: each trial's panic is
/// caught and recorded as [`TrialOutcome::Panicked`] in its slot, and
/// every other trial runs to completion.
///
/// The outcome sequence — including which slots are quarantined and
/// their messages — is a pure function of `(seed, n)`, identical for
/// every `jobs` value. Panic-hook output is suppressed for the
/// duration (see [`silence_panics`]); the messages are in the slots.
pub fn try_par_trials<T, F>(jobs: usize, n: usize, base: &SimRng, trial: F) -> Vec<TrialOutcome<T>>
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
{
    let _quiet = silence_panics();
    run_caught(jobs, n, base, trial)
        .into_iter()
        .map(|r| match r {
            Ok(v) => TrialOutcome::Ok(v),
            Err(payload) => TrialOutcome::Panicked {
                message: panic_message(payload.as_ref()),
            },
        })
        .collect()
}

/// [`par_trials`] followed by an **in-order** fold — the parallel
/// drop-in for the classic `for _ in 0..trials { acc.add(...) }` loop.
///
/// `fold(acc, i, out)` sees trial outputs in ascending trial order, so
/// even order-sensitive accumulators merge deterministically.
pub fn par_trials_fold<T, A, F, G>(
    jobs: usize,
    n: usize,
    base: &SimRng,
    trial: F,
    init: A,
    fold: G,
) -> A
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
    G: FnMut(A, usize, T) -> A,
{
    let mut fold = fold;
    par_trials(jobs, n, base, trial)
        .into_iter()
        .enumerate()
        .fold(init, |acc, (i, out)| fold(acc, i, out))
}

/// [`try_par_trials`] followed by an **in-order** fold over the
/// [`TrialOutcome`]s — quarantine-aware accumulation (skip, count, or
/// inspect panicked slots as the fold sees fit).
pub fn try_par_trials_fold<T, A, F, G>(
    jobs: usize,
    n: usize,
    base: &SimRng,
    trial: F,
    init: A,
    fold: G,
) -> A
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
    G: FnMut(A, usize, TrialOutcome<T>) -> A,
{
    let mut fold = fold;
    try_par_trials(jobs, n, base, trial)
        .into_iter()
        .enumerate()
        .fold(init, |acc, (i, out)| fold(acc, i, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn results_arrive_in_trial_order() {
        let base = SimRng::seed(9);
        let out = par_trials(4, 100, &base, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_jobs_invariant() {
        let base = SimRng::seed(1234);
        let serial = par_trials(1, 257, &base, |_, mut rng| rng.next_u64());
        for jobs in [2, 3, 4, 8] {
            let par = par_trials(jobs, 257, &base, |_, mut rng| rng.next_u64());
            assert_eq!(serial, par, "jobs={jobs}");
        }
    }

    #[test]
    fn trial_streams_match_fork_idx() {
        let base = SimRng::seed(5);
        let out = par_trials(4, 32, &base, |_, mut rng| rng.next_u64());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, base.fork_idx(i as u64).next_u64());
        }
    }

    #[test]
    fn fold_sees_ascending_indices() {
        let base = SimRng::seed(5);
        let order = par_trials_fold(
            4,
            64,
            &base,
            |i, _| i,
            Vec::new(),
            |mut acc: Vec<usize>, i, out| {
                assert_eq!(i, out);
                acc.push(i);
                acc
            },
        );
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_trial_set() {
        let base = SimRng::seed(5);
        let out: Vec<u64> = par_trials(4, 0, &base, |_, mut rng| rng.next_u64());
        assert!(out.is_empty());
    }

    #[test]
    fn quarantine_is_jobs_invariant() {
        // A fixed pseudo-random subset of trials panics; the outcome
        // sequence (slots and messages) must not depend on jobs.
        let base = SimRng::seed(77);
        let run = |jobs| {
            try_par_trials(jobs, 97, &base, |i, mut rng| {
                if rng.chance(0.3) {
                    panic!("trial {i} failed");
                }
                rng.next_u64()
            })
        };
        let serial = run(1);
        assert!(serial.iter().any(|o| !o.is_ok()), "no panic injected");
        assert!(serial.iter().any(|o| o.is_ok()), "every trial panicked");
        for jobs in [2, 4, 8] {
            assert_eq!(serial, run(jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn quarantined_messages_carry_the_payload() {
        let base = SimRng::seed(1);
        let out = try_par_trials(4, 8, &base, |i, _| {
            if i == 3 {
                panic!("boom at {i}");
            }
            i
        });
        assert_eq!(out[3].panic_message(), Some("boom at 3"));
        assert_eq!(out[2], TrialOutcome::Ok(2));
        assert_eq!(out.iter().filter(|o| o.is_ok()).count(), 7);
    }

    #[test]
    fn propagation_rethrows_the_original_payload() {
        // Both serial and parallel paths must surface the payload of
        // the lowest-index panicking trial, not a synthetic message.
        for jobs in [1, 4] {
            let base = SimRng::seed(2);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                par_trials(jobs, 16, &base, |i, _| {
                    if i == 5 || i == 11 {
                        panic!("original payload {i}");
                    }
                    i
                })
            }))
            .expect_err("must panic");
            assert_eq!(
                panic_message(caught.as_ref()),
                "original payload 5",
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn try_fold_sees_quarantined_slots_in_order() {
        let base = SimRng::seed(3);
        let (sum, panics) = try_par_trials_fold(
            4,
            32,
            &base,
            |i, _| {
                if i % 7 == 0 {
                    panic!("die {i}");
                }
                i
            },
            (0usize, 0usize),
            |(sum, panics), i, out| match out {
                TrialOutcome::Ok(v) => {
                    assert_eq!(v, i);
                    (sum + v, panics)
                }
                TrialOutcome::Panicked { message } => {
                    assert_eq!(message, format!("die {i}"));
                    (sum, panics + 1)
                }
            },
        );
        assert_eq!(panics, 5, "trials 0,7,14,21,28");
        assert_eq!(sum, (0..32).filter(|i| i % 7 != 0).sum::<usize>());
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let s: Box<dyn Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let owned: Box<dyn Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(owned.as_ref()), "owned");
        let odd: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(odd.as_ref()), "<non-string panic payload>");
    }
}
