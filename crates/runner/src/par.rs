//! Deterministic parallel Monte-Carlo helpers.
//!
//! Trial `i` always computes on the stream `base.fork_idx(i)` and its
//! result lands in slot `i`; the merge happens in slot order. The
//! worker count therefore changes wall-clock time and nothing else.

use autosec_sim::SimRng;

use crate::pool::WorkStealingPool;

/// Runs `n` independent trials, trial `i` on `base.fork_idx(i)`, and
/// returns the results **in trial order**.
///
/// Bit-identical output for every `jobs` value, including 1.
///
/// # Panics
///
/// Panics (propagated) if any trial panics.
pub fn par_trials<T, F>(jobs: usize, n: usize, base: &SimRng, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
{
    let pool = WorkStealingPool::new(jobs);
    if pool.jobs() == 1 || n <= 1 {
        return (0..n).map(|i| trial(i, base.fork_idx(i as u64))).collect();
    }

    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    pool.execute(n, |i| {
        let out = trial(i, base.fork_idx(i as u64));
        *slots[i].lock().expect("slot poisoned") = Some(out);
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// [`par_trials`] followed by an **in-order** fold — the parallel
/// drop-in for the classic `for _ in 0..trials { acc.add(...) }` loop.
///
/// `fold(acc, i, out)` sees trial outputs in ascending trial order, so
/// even order-sensitive accumulators merge deterministically.
pub fn par_trials_fold<T, A, F, G>(
    jobs: usize,
    n: usize,
    base: &SimRng,
    trial: F,
    init: A,
    fold: G,
) -> A
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
    G: FnMut(A, usize, T) -> A,
{
    let mut fold = fold;
    par_trials(jobs, n, base, trial)
        .into_iter()
        .enumerate()
        .fold(init, |acc, (i, out)| fold(acc, i, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn results_arrive_in_trial_order() {
        let base = SimRng::seed(9);
        let out = par_trials(4, 100, &base, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_jobs_invariant() {
        let base = SimRng::seed(1234);
        let serial = par_trials(1, 257, &base, |_, mut rng| rng.next_u64());
        for jobs in [2, 3, 4, 8] {
            let par = par_trials(jobs, 257, &base, |_, mut rng| rng.next_u64());
            assert_eq!(serial, par, "jobs={jobs}");
        }
    }

    #[test]
    fn trial_streams_match_fork_idx() {
        let base = SimRng::seed(5);
        let out = par_trials(4, 32, &base, |_, mut rng| rng.next_u64());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, base.fork_idx(i as u64).next_u64());
        }
    }

    #[test]
    fn fold_sees_ascending_indices() {
        let base = SimRng::seed(5);
        let order = par_trials_fold(
            4,
            64,
            &base,
            |i, _| i,
            Vec::new(),
            |mut acc: Vec<usize>, i, out| {
                assert_eq!(i, out);
                acc.push(i);
                acc
            },
        );
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_trial_set() {
        let base = SimRng::seed(5);
        let out: Vec<u64> = par_trials(4, 0, &base, |_, mut rng| rng.next_u64());
        assert!(out.is_empty());
    }
}
