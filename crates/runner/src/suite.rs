//! The fault-tolerant suite runner: experiment-level degradation.
//!
//! [`run_suite`] executes a selection of experiments the way the
//! layered-defense story says a system should fail — partially, not
//! whole:
//!
//! - every experiment runs under supervision with a **soft deadline**
//!   derived from its [`Cost`](crate::Cost) class (or a fixed
//!   override). In-process mode contains panics with `catch_unwind`
//!   and *detaches* overtime worker threads (Rust cannot kill a
//!   thread); with [`SuiteOptions::isolation`] set, each entry instead
//!   runs in a spawned **child process** that a deadline or resource
//!   budget SIGKILLs for real — see [`crate::proc`];
//! - budget violations are first-class outcomes: a child killed over
//!   its peak-RSS budget records `oom_killed`, one over its
//!   CPU-seconds budget records `cpu_exceeded`, and both are
//!   retryable;
//! - with `keep_going`, failures degrade the run instead of ending it:
//!   untouched experiments produce bit-identical artifacts to a clean
//!   run, because trial RNG streams never depend on what other
//!   experiments did — and a worker child's artifact is identical to
//!   in-process output by construction (same pure function of seed);
//! - [`SuiteOptions::retries`] re-runs failed entries with
//!   exponential backoff whose jitter comes from the run's own seeded
//!   substream ([`retry_delay`]) — the schedule is a pure function of
//!   `(seed, slug, attempt)`, deterministic and jobs-invariant;
//! - a `skip` set (computed by the caller from a prior manifest via
//!   [`ResumeState`](crate::ResumeState)) turns already-completed
//!   experiments into `skipped` records, which is how `--resume`
//!   restarts a 30-experiment run in seconds.
//!
//! The runner reports each record through a callback as it is
//! produced, so the caller can print tables and persist artifacts
//! incrementally — an interrupted process leaves a resumable manifest
//! behind rather than nothing.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::Value;

use crate::artifact::ExperimentRecord;
use crate::ctx::RunCtx;
use crate::par::{panic_message, silence_panics};
use crate::proc::{
    retry_delay, supervise, worker_failure_path, KillReason, ResourceBudgets, WorkerSpec,
};
use crate::registry::Experiment;
use crate::table::Table;

/// Process-isolation settings for a suite run (`--isolate on`).
#[derive(Debug, Clone)]
pub struct Isolation {
    /// How to re-invoke the experiments binary as a worker.
    pub spec: WorkerSpec,
    /// Requested budgets. An unset CPU ceiling is derived per
    /// experiment from its [`Cost`](crate::Cost)
    /// (`cpu_budget_secs`); an unset RSS ceiling leaves memory
    /// unbudgeted.
    pub budgets: ResourceBudgets,
    /// Directory for per-experiment handoff subdirectories
    /// (`<root>/<slug>/`), recreated per attempt.
    pub handoff_root: PathBuf,
}

/// Degradation policy for one suite run.
#[derive(Debug, Clone, Default)]
pub struct SuiteOptions {
    /// Record failures and keep running (`--keep-going`). Without it
    /// the suite stops at the first failure — but still returns the
    /// failure record, so the caller can persist a resumable manifest.
    pub keep_going: bool,
    /// Fixed per-experiment deadline replacing the cost-derived one
    /// (`--deadline-secs`).
    pub deadline_override: Option<Duration>,
    /// Slugs to skip because a prior run's artifact already covers
    /// them (`--resume`).
    pub skip: BTreeSet<String>,
    /// Extra attempts for failed entries (`--retries N`); each re-run
    /// waits [`retry_delay`] first. 0 = at most one attempt.
    pub retries: u32,
    /// `Some` switches entries from supervised threads to supervised
    /// child processes (`--isolate on`).
    pub isolation: Option<Isolation>,
}

impl SuiteOptions {
    /// The soft deadline in force for `exp`.
    pub fn deadline_for(&self, exp: &Experiment) -> Duration {
        self.deadline_override
            .unwrap_or_else(|| exp.cost.deadline())
    }
}

/// What [`run_suite`] produced.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// One record per selected experiment, in run order (all
    /// statuses). When `aborted`, the trailing experiments were never
    /// attempted and have no record.
    pub records: Vec<ExperimentRecord>,
    /// Whether the suite stopped early (first failure without
    /// `keep_going`).
    pub aborted: bool,
}

impl SuiteReport {
    /// Records of experiments that failed, timed out, or were killed
    /// over a budget, in run order.
    pub fn failures(&self) -> Vec<&ExperimentRecord> {
        self.records
            .iter()
            .filter(|r| r.status.is_failure())
            .collect()
    }

    /// Whether every selected experiment completed or was skipped.
    pub fn all_ok(&self) -> bool {
        !self.aborted && self.failures().is_empty()
    }
}

/// How one supervised experiment ended (internal).
enum WorkerVerdict {
    Done(Table),
    Panicked(String),
    Overtime { detached: bool },
    OomKilled { peak_mb: u64, limit_mb: u64 },
    CpuExceeded { used_secs: f64, limit_secs: u64 },
}

/// Runs one experiment on a supervised worker thread with a deadline.
///
/// On timeout the worker is detached: it keeps running (Rust offers no
/// safe way to kill a thread) but its eventual result is discarded —
/// the channel's receiver is gone. The suite only ever waits
/// `deadline` for it; `detached` records whether the thread was in
/// fact still running when the suite moved on, so the manifest can
/// flag the leak (`overtime_detached`). Process isolation
/// ([`run_isolated`]) is the mode that actually reclaims the worker.
fn run_supervised(
    exp: &Arc<Experiment>,
    ctx: &RunCtx,
    deadline: Duration,
) -> (Duration, WorkerVerdict) {
    let (tx, rx) = mpsc::channel();
    let worker_exp = Arc::clone(exp);
    let worker_ctx = *ctx;
    let start = Instant::now();
    let handle = std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| worker_exp.run(&worker_ctx)));
        // A send after the deadline fails harmlessly: nobody listens.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(deadline) {
        Ok(result) => {
            let elapsed = start.elapsed();
            let _ = handle.join();
            match result {
                Ok(table) => (elapsed, WorkerVerdict::Done(table)),
                Err(payload) => (
                    elapsed,
                    WorkerVerdict::Panicked(panic_message(payload.as_ref())),
                ),
            }
        }
        Err(_) => (
            start.elapsed(),
            WorkerVerdict::Overtime {
                detached: !handle.is_finished(),
            },
        ),
    }
}

/// Runs one experiment in a supervised child process with a deadline
/// and resource budgets (see [`crate::proc`]). The child writes its
/// artifact into a private handoff directory; the parent parses the
/// table back out, so the caller's artifact pipeline is identical to
/// in-process execution.
fn run_isolated(
    exp: &Arc<Experiment>,
    ctx: &RunCtx,
    deadline: Duration,
    iso: &Isolation,
) -> (Duration, WorkerVerdict) {
    let handoff = iso.handoff_root.join(exp.slug);
    let _ = std::fs::remove_dir_all(&handoff);
    if let Err(e) = std::fs::create_dir_all(&handoff) {
        return (
            Duration::ZERO,
            WorkerVerdict::Panicked(format!("worker handoff dir failed: {e}")),
        );
    }
    let budgets = ResourceBudgets {
        rss_limit_mb: iso.budgets.rss_limit_mb,
        cpu_limit_secs: Some(
            iso.budgets
                .cpu_limit_secs
                .unwrap_or_else(|| exp.cost.cpu_budget_secs(ctx.jobs)),
        ),
    };
    let mut cmd = iso.spec.command(exp.slug, &handoff, budgets);
    let outcome = match supervise(&mut cmd, deadline, budgets) {
        Ok(o) => o,
        Err(e) => {
            return (
                Duration::ZERO,
                WorkerVerdict::Panicked(format!("worker spawn failed: {e}")),
            )
        }
    };
    let elapsed = outcome.elapsed;
    let verdict = classify_outcome(exp, &handoff, outcome, budgets);
    // Everything the verdict needs has been read back; a stale handoff
    // tree must not leak into artifact-dir diffs.
    let _ = std::fs::remove_dir_all(&handoff);
    (elapsed, verdict)
}

/// Maps a supervised child's exit (or kill) to a verdict, folding in
/// the handoff artifact / failure file it left behind.
fn classify_outcome(
    exp: &Experiment,
    handoff: &std::path::Path,
    outcome: crate::proc::ProcOutcome,
    budgets: ResourceBudgets,
) -> WorkerVerdict {
    if let Some(reason) = outcome.killed {
        return match reason {
            KillReason::Deadline => WorkerVerdict::Overtime { detached: false },
            KillReason::Rss { peak_mb, limit_mb } => WorkerVerdict::OomKilled { peak_mb, limit_mb },
            KillReason::Cpu {
                used_secs,
                limit_secs,
            } => WorkerVerdict::CpuExceeded {
                used_secs,
                limit_secs,
            },
        };
    }

    let exit = outcome.exit.expect("no kill means the child exited");
    if exit.success() {
        let path = handoff.join(format!("{}.json", exp.slug));
        let table = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .and_then(|v: Value| v.get("table").and_then(Table::from_json));
        return match table {
            Some(table) => WorkerVerdict::Done(table),
            None => WorkerVerdict::Panicked(format!(
                "worker exited cleanly but left no readable artifact at {}",
                path.display()
            )),
        };
    }
    if let Ok(message) = std::fs::read_to_string(worker_failure_path(handoff, exp.slug)) {
        return WorkerVerdict::Panicked(message);
    }
    // The rlimit backstop fires as a signal with no failure file; if
    // the observed peaks explain the death, classify it as the budget
    // breach it is rather than an anonymous crash.
    if let Some(sig) = exit_signal(&exit) {
        if let Some(limit_mb) = budgets.rss_limit_mb {
            if outcome.peak_rss_mb >= limit_mb {
                return WorkerVerdict::OomKilled {
                    peak_mb: outcome.peak_rss_mb,
                    limit_mb,
                };
            }
        }
        if let Some(limit_secs) = budgets.cpu_limit_secs {
            if outcome.cpu_secs >= limit_secs as f64 {
                return WorkerVerdict::CpuExceeded {
                    used_secs: outcome.cpu_secs,
                    limit_secs,
                };
            }
        }
        return WorkerVerdict::Panicked(format!("worker killed by signal {sig}"));
    }
    WorkerVerdict::Panicked(format!(
        "worker exited with code {}",
        exit.code().unwrap_or(-1)
    ))
}

#[cfg(unix)]
fn exit_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn exit_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

/// Maps one attempt's verdict to its record.
fn verdict_record(
    exp: &Experiment,
    elapsed: Duration,
    deadline: Duration,
    verdict: WorkerVerdict,
) -> ExperimentRecord {
    match verdict {
        WorkerVerdict::Done(table) => ExperimentRecord::ok(exp.slug, exp.id, elapsed, table),
        WorkerVerdict::Panicked(message) => {
            ExperimentRecord::failed(exp.slug, exp.id, elapsed, message)
        }
        WorkerVerdict::Overtime { detached } => {
            ExperimentRecord::timed_out(exp.slug, exp.id, elapsed, deadline, detached)
        }
        WorkerVerdict::OomKilled { peak_mb, limit_mb } => {
            ExperimentRecord::oom_killed(exp.slug, exp.id, elapsed, peak_mb, limit_mb)
        }
        WorkerVerdict::CpuExceeded {
            used_secs,
            limit_secs,
        } => ExperimentRecord::cpu_exceeded(exp.slug, exp.id, elapsed, used_secs, limit_secs),
    }
}

/// Runs `experiments` in order under the given degradation policy,
/// reporting each [`ExperimentRecord`] through `on_record` the moment
/// it exists (print the table, write the artifact, rewrite the
/// manifest — whatever the caller does with progress).
///
/// Determinism: experiments influence each other only through the
/// shared `ctx` seed, which none of them mutates, so the set of
/// failures never changes *what the healthy experiments compute* —
/// their tables are bit-identical to a clean run's, whether computed
/// in-process or inside a worker child.
pub fn run_suite(
    experiments: &[Arc<Experiment>],
    ctx: &RunCtx,
    opts: &SuiteOptions,
    mut on_record: impl FnMut(&ExperimentRecord),
) -> SuiteReport {
    // Panics are contained and reported through the manifest; the
    // default hook's stderr dump would only repeat them (and a chaos
    // experiment under --keep-going would flood the log).
    let _quiet = opts.keep_going.then(silence_panics);

    let mut report = SuiteReport {
        records: Vec::with_capacity(experiments.len()),
        aborted: false,
    };
    for exp in experiments {
        let record = if opts.skip.contains(exp.slug) {
            ExperimentRecord::skipped(exp.slug, exp.id)
        } else {
            let deadline = opts.deadline_for(exp);
            let mut attempt: u32 = 0;
            loop {
                let (elapsed, verdict) = match &opts.isolation {
                    Some(iso) => run_isolated(exp, ctx, deadline, iso),
                    None => run_supervised(exp, ctx, deadline),
                };
                let record =
                    verdict_record(exp, elapsed, deadline, verdict).with_attempts(attempt + 1);
                if record.status.is_failure() && attempt < opts.retries {
                    std::thread::sleep(retry_delay(ctx.seed, exp.slug, attempt));
                    attempt += 1;
                    continue;
                }
                break record;
            }
        };
        let failed = record.status.is_failure();
        on_record(&record);
        report.records.push(record);
        if failed && !opts.keep_going {
            report.aborted = true;
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::RunStatus;
    use crate::registry::{Cost, Registry};

    fn toy_registry() -> Registry {
        let mut r = Registry::new();
        r.register(Experiment::new(
            "T1",
            "t1-ok",
            "healthy",
            &[],
            Cost::Cheap,
            |ctx| {
                let mut t = Table::new("T1", "healthy", &["seed"]);
                t.push_row(vec![ctx.seed.to_string()]);
                t
            },
        ));
        r.register(Experiment::new(
            "T2",
            "t2-panic",
            "always panics",
            &[],
            Cost::Cheap,
            |_| panic!("t2 exploded deterministically"),
        ));
        r.register(Experiment::new(
            "T3",
            "t3-slow",
            "sleeps 300 ms",
            &[],
            Cost::Cheap,
            |_| {
                std::thread::sleep(Duration::from_millis(300));
                Table::new("T3", "slow", &["a"])
            },
        ));
        r.register(Experiment::new(
            "T4",
            "t4-ok",
            "healthy too",
            &[],
            Cost::Cheap,
            |_| Table::new("T4", "ok", &["a"]),
        ));
        r
    }

    #[test]
    fn keep_going_quarantines_the_panicking_experiment() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            keep_going: true,
            ..Default::default()
        };
        let mut seen = Vec::new();
        let report = run_suite(&reg.all(), &RunCtx::new(42, 1), &opts, |r| {
            seen.push(r.slug.clone());
        });
        assert_eq!(seen, vec!["t1-ok", "t2-panic", "t3-slow", "t4-ok"]);
        assert!(!report.aborted);
        assert_eq!(report.failures().len(), 1);
        let failure = &report.records[1];
        assert_eq!(
            failure.status,
            RunStatus::Failed {
                message: "t2 exploded deterministically".into()
            }
        );
        assert!(failure.table.is_none());
        // The healthy experiments still produced their tables.
        assert!(report.records[0].table.is_some());
        assert!(report.records[3].table.is_some());
    }

    #[test]
    fn without_keep_going_the_suite_stops_at_the_failure() {
        let reg = toy_registry();
        let report = run_suite(
            &reg.all(),
            &RunCtx::new(42, 1),
            &SuiteOptions::default(),
            |_| {},
        );
        assert!(report.aborted);
        assert_eq!(report.records.len(), 2, "t3/t4 never attempted");
        assert!(report.records[1].status.is_failure());
    }

    #[test]
    fn deadline_marks_slow_experiments_overtime_and_flags_the_leak() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            keep_going: true,
            deadline_override: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        let report = run_suite(&reg.select("t3-slow"), &RunCtx::new(42, 1), &opts, |_| {});
        assert_eq!(report.records.len(), 1);
        match &report.records[0].status {
            RunStatus::TimedOut { deadline, detached } => {
                assert_eq!(*deadline, Duration::from_millis(50));
                // The 300 ms sleeper is still running when the 50 ms
                // deadline fires — the in-process fallback must admit
                // the leak instead of silently dropping the thread.
                assert!(*detached, "overtime worker was still running");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(report.records[0].duration >= Duration::from_millis(50));
    }

    #[test]
    fn generous_deadline_lets_slow_experiments_finish() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            keep_going: true,
            deadline_override: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let report = run_suite(&reg.select("t3-slow"), &RunCtx::new(42, 1), &opts, |_| {});
        assert_eq!(report.records[0].status, RunStatus::Ok);
    }

    #[test]
    fn skip_set_produces_skipped_records_without_running() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            // Skipping the panicking experiment means nothing fails.
            skip: ["t2-panic".to_owned(), "t1-ok".to_owned()].into(),
            ..Default::default()
        };
        let report = run_suite(&reg.all(), &RunCtx::new(42, 1), &opts, |_| {});
        assert!(report.all_ok());
        assert_eq!(report.records[0].status, RunStatus::Skipped);
        assert_eq!(report.records[1].status, RunStatus::Skipped);
        assert_eq!(report.records[2].status, RunStatus::Ok);
        assert_eq!(report.records[0].duration, Duration::ZERO);
    }

    #[test]
    fn healthy_tables_are_identical_with_and_without_a_neighbor_failing() {
        // The core keep-going promise: a failure changes nothing for
        // the experiments around it.
        let reg = toy_registry();
        let ctx = RunCtx::new(7, 2);
        let opts = SuiteOptions {
            keep_going: true,
            ..Default::default()
        };
        let degraded = run_suite(&reg.all(), &ctx, &opts, |_| {});
        let clean = run_suite(
            &reg.select_many(&["t1-ok", "t4-ok"]),
            &ctx,
            &SuiteOptions::default(),
            |_| {},
        );
        assert_eq!(degraded.records[0].table, clean.records[0].table);
        assert_eq!(degraded.records[3].table, clean.records[1].table);
    }

    #[test]
    fn cost_derived_deadline_is_used_when_no_override() {
        let reg = toy_registry();
        let opts = SuiteOptions::default();
        let exp = &reg.select("t1-ok")[0];
        assert_eq!(opts.deadline_for(exp), Cost::Cheap.deadline());
        let fixed = SuiteOptions {
            deadline_override: Some(Duration::from_secs(1)),
            ..Default::default()
        };
        assert_eq!(fixed.deadline_for(exp), Duration::from_secs(1));
    }

    #[test]
    fn retries_rerun_failures_until_green() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let mut r = Registry::new();
        r.register(Experiment::new(
            "T5",
            "t5-flaky",
            "fails twice then succeeds",
            &[],
            Cost::Cheap,
            |_| {
                if CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky wobble");
                }
                Table::new("T5", "ok", &["a"])
            },
        ));
        let opts = SuiteOptions {
            keep_going: true,
            retries: 3,
            ..Default::default()
        };
        let report = run_suite(&r.all(), &RunCtx::new(42, 1), &opts, |_| {});
        assert!(report.all_ok());
        assert_eq!(report.records[0].status, RunStatus::Ok);
        assert_eq!(report.records[0].attempts, 3, "two failures + one success");
    }

    #[test]
    fn exhausted_retries_keep_the_final_failure() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            keep_going: true,
            retries: 1,
            ..Default::default()
        };
        let report = run_suite(&reg.select("t2-panic"), &RunCtx::new(42, 1), &opts, |_| {});
        assert_eq!(report.records[0].attempts, 2);
        assert!(report.records[0].status.is_failure());
    }

    // Process-isolation plumbing tested with /bin/sh standing in for
    // the experiments binary: `sh -c <script>` receives the appended
    // worker args as $0..$3 (`--worker-one <slug> --out <handoff>`),
    // so a script can address its own handoff directory as "$3".
    #[cfg(unix)]
    fn sh_isolation(script: &str, tag: &str) -> Isolation {
        let root = std::env::temp_dir().join(format!("autosec-suite-iso-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        Isolation {
            spec: WorkerSpec {
                exe: PathBuf::from("/bin/sh"),
                base_args: vec!["-c".into(), script.into()],
            },
            budgets: ResourceBudgets::default(),
            handoff_root: root,
        }
    }

    #[cfg(unix)]
    #[test]
    fn isolated_worker_artifact_becomes_the_record_table() {
        let script = r#"printf '{"table":{"id":"T1","title":"from child","headers":["a"],"rows":[["7"]]}}' > "$3/$1.json""#;
        let iso = sh_isolation(script, "ok");
        let root = iso.handoff_root.clone();
        let opts = SuiteOptions {
            isolation: Some(iso),
            ..Default::default()
        };
        let reg = toy_registry();
        let report = run_suite(&reg.select("t1-ok"), &RunCtx::new(42, 1), &opts, |_| {});
        assert!(report.all_ok());
        let table = report.records[0].table.as_ref().expect("parsed back");
        assert_eq!(table.id, "T1");
        assert_eq!(table.title, "from child");
        assert_eq!(table.rows, vec![vec!["7".to_owned()]]);
        let _ = std::fs::remove_dir_all(root);
    }

    #[cfg(unix)]
    #[test]
    fn isolated_deadline_kills_the_child_for_real() {
        let iso = sh_isolation("sleep 30", "deadline");
        let root = iso.handoff_root.clone();
        let opts = SuiteOptions {
            keep_going: true,
            deadline_override: Some(Duration::from_millis(200)),
            isolation: Some(iso),
            ..Default::default()
        };
        let reg = toy_registry();
        let start = Instant::now();
        let report = run_suite(&reg.select("t1-ok"), &RunCtx::new(42, 1), &opts, |_| {});
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "the 30 s sleeper must not hold the suite"
        );
        match &report.records[0].status {
            RunStatus::TimedOut { deadline, detached } => {
                assert_eq!(*deadline, Duration::from_millis(200));
                assert!(!*detached, "a killed child leaks nothing");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[cfg(unix)]
    #[test]
    fn isolated_crash_reports_the_exit_code() {
        let iso = sh_isolation("exit 7", "crash");
        let root = iso.handoff_root.clone();
        let opts = SuiteOptions {
            keep_going: true,
            isolation: Some(iso),
            ..Default::default()
        };
        let reg = toy_registry();
        let report = run_suite(&reg.select("t1-ok"), &RunCtx::new(42, 1), &opts, |_| {});
        assert_eq!(
            report.records[0].status,
            RunStatus::Failed {
                message: "worker exited with code 7".into()
            }
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[cfg(unix)]
    #[test]
    fn isolated_panic_file_preserves_the_message() {
        // A worker that panics writes <slug>.panic.txt and exits 101;
        // the manifest must carry the original message, exactly as the
        // in-process path does.
        let script = r#"printf 'chaos probe: injected panic' > "$3/$1.panic.txt"; exit 101"#;
        let iso = sh_isolation(script, "panic");
        let root = iso.handoff_root.clone();
        let opts = SuiteOptions {
            keep_going: true,
            isolation: Some(iso),
            ..Default::default()
        };
        let reg = toy_registry();
        let report = run_suite(&reg.select("t1-ok"), &RunCtx::new(42, 1), &opts, |_| {});
        assert_eq!(
            report.records[0].status,
            RunStatus::Failed {
                message: "chaos probe: injected panic".into()
            }
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[cfg(unix)]
    #[test]
    fn isolated_clean_exit_without_artifact_is_a_failure() {
        let iso = sh_isolation("exit 0", "no-artifact");
        let root = iso.handoff_root.clone();
        let opts = SuiteOptions {
            keep_going: true,
            isolation: Some(iso),
            ..Default::default()
        };
        let reg = toy_registry();
        let report = run_suite(&reg.select("t1-ok"), &RunCtx::new(42, 1), &opts, |_| {});
        match &report.records[0].status {
            RunStatus::Failed { message } => {
                assert!(message.contains("no readable artifact"), "{message}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn spawn_failure_is_contained_not_fatal() {
        let iso = Isolation {
            spec: WorkerSpec {
                exe: PathBuf::from("/nonexistent/experiments-binary"),
                base_args: vec![],
            },
            budgets: ResourceBudgets::default(),
            handoff_root: std::env::temp_dir().join("autosec-suite-iso-spawnfail"),
        };
        let root = iso.handoff_root.clone();
        let opts = SuiteOptions {
            keep_going: true,
            isolation: Some(iso),
            ..Default::default()
        };
        let reg = toy_registry();
        let report = run_suite(&reg.select("t1-ok"), &RunCtx::new(42, 1), &opts, |_| {});
        match &report.records[0].status {
            RunStatus::Failed { message } => {
                assert!(message.contains("worker spawn failed"), "{message}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(root);
    }
}
