//! The fault-tolerant suite runner: experiment-level degradation.
//!
//! [`run_suite`] executes a selection of experiments the way the
//! layered-defense story says a system should fail — partially, not
//! whole:
//!
//! - every experiment runs under `catch_unwind` on a supervised worker
//!   thread, so a panicking experiment is **contained** and recorded
//!   (with its original panic message) instead of aborting the suite;
//! - each experiment gets a **soft deadline** derived from its
//!   [`Cost`](crate::Cost) class (or a fixed override); an overtime
//!   experiment is recorded as `timed_out` and the suite moves on —
//!   the abandoned worker is detached, never joined;
//! - with `keep_going`, failures degrade the run instead of ending it:
//!   untouched experiments produce bit-identical artifacts to a clean
//!   run, because trial RNG streams never depend on what other
//!   experiments did;
//! - a `skip` set (computed by the caller from a prior manifest via
//!   [`ResumeState`](crate::ResumeState)) turns already-completed
//!   experiments into `skipped` records, which is how `--resume`
//!   restarts a 30-experiment run in seconds.
//!
//! The runner reports each record through a callback as it is
//! produced, so the caller can print tables and persist artifacts
//! incrementally — an interrupted process leaves a resumable manifest
//! behind rather than nothing.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::artifact::ExperimentRecord;
use crate::ctx::RunCtx;
use crate::par::{panic_message, silence_panics};
use crate::registry::Experiment;
use crate::table::Table;

/// Degradation policy for one suite run.
#[derive(Debug, Clone, Default)]
pub struct SuiteOptions {
    /// Record failures and keep running (`--keep-going`). Without it
    /// the suite stops at the first failure — but still returns the
    /// failure record, so the caller can persist a resumable manifest.
    pub keep_going: bool,
    /// Fixed per-experiment deadline replacing the cost-derived one
    /// (`--deadline-secs`).
    pub deadline_override: Option<Duration>,
    /// Slugs to skip because a prior run's artifact already covers
    /// them (`--resume`).
    pub skip: BTreeSet<String>,
}

impl SuiteOptions {
    /// The soft deadline in force for `exp`.
    pub fn deadline_for(&self, exp: &Experiment) -> Duration {
        self.deadline_override
            .unwrap_or_else(|| exp.cost.deadline())
    }
}

/// What [`run_suite`] produced.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// One record per selected experiment, in run order (all
    /// statuses). When `aborted`, the trailing experiments were never
    /// attempted and have no record.
    pub records: Vec<ExperimentRecord>,
    /// Whether the suite stopped early (first failure without
    /// `keep_going`).
    pub aborted: bool,
}

impl SuiteReport {
    /// Records of experiments that failed or timed out, in run order.
    pub fn failures(&self) -> Vec<&ExperimentRecord> {
        self.records
            .iter()
            .filter(|r| r.status.is_failure())
            .collect()
    }

    /// Whether every selected experiment completed or was skipped.
    pub fn all_ok(&self) -> bool {
        !self.aborted && self.failures().is_empty()
    }
}

/// How one supervised experiment ended (internal).
enum WorkerVerdict {
    Done(Table),
    Panicked(String),
    Overtime,
}

/// Runs one experiment on a supervised worker thread with a deadline.
///
/// On timeout the worker is detached: it keeps running (Rust offers no
/// safe way to kill a thread) but its eventual result is discarded —
/// the channel's receiver is gone. The suite only ever waits
/// `deadline` for it.
fn run_supervised(
    exp: &Arc<Experiment>,
    ctx: &RunCtx,
    deadline: Duration,
) -> (Duration, WorkerVerdict) {
    let (tx, rx) = mpsc::channel();
    let worker_exp = Arc::clone(exp);
    let worker_ctx = *ctx;
    let start = Instant::now();
    let handle = std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| worker_exp.run(&worker_ctx)));
        // A send after the deadline fails harmlessly: nobody listens.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(deadline) {
        Ok(result) => {
            let elapsed = start.elapsed();
            let _ = handle.join();
            match result {
                Ok(table) => (elapsed, WorkerVerdict::Done(table)),
                Err(payload) => (
                    elapsed,
                    WorkerVerdict::Panicked(panic_message(payload.as_ref())),
                ),
            }
        }
        Err(_) => (start.elapsed(), WorkerVerdict::Overtime),
    }
}

/// Runs `experiments` in order under the given degradation policy,
/// reporting each [`ExperimentRecord`] through `on_record` the moment
/// it exists (print the table, write the artifact, rewrite the
/// manifest — whatever the caller does with progress).
///
/// Determinism: experiments influence each other only through the
/// shared `ctx` seed, which none of them mutates, so the set of
/// failures never changes *what the healthy experiments compute* —
/// their tables are bit-identical to a clean run's.
pub fn run_suite(
    experiments: &[Arc<Experiment>],
    ctx: &RunCtx,
    opts: &SuiteOptions,
    mut on_record: impl FnMut(&ExperimentRecord),
) -> SuiteReport {
    // Panics are contained and reported through the manifest; the
    // default hook's stderr dump would only repeat them (and a chaos
    // experiment under --keep-going would flood the log).
    let _quiet = opts.keep_going.then(silence_panics);

    let mut report = SuiteReport {
        records: Vec::with_capacity(experiments.len()),
        aborted: false,
    };
    for exp in experiments {
        let record = if opts.skip.contains(exp.slug) {
            ExperimentRecord::skipped(exp.slug, exp.id)
        } else {
            let deadline = opts.deadline_for(exp);
            let (elapsed, verdict) = run_supervised(exp, ctx, deadline);
            match verdict {
                WorkerVerdict::Done(table) => {
                    ExperimentRecord::ok(exp.slug, exp.id, elapsed, table)
                }
                WorkerVerdict::Panicked(message) => {
                    ExperimentRecord::failed(exp.slug, exp.id, elapsed, message)
                }
                WorkerVerdict::Overtime => {
                    ExperimentRecord::timed_out(exp.slug, exp.id, elapsed, deadline)
                }
            }
        };
        let failed = record.status.is_failure();
        on_record(&record);
        report.records.push(record);
        if failed && !opts.keep_going {
            report.aborted = true;
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::RunStatus;
    use crate::registry::{Cost, Registry};

    fn toy_registry() -> Registry {
        let mut r = Registry::new();
        r.register(Experiment::new(
            "T1",
            "t1-ok",
            "healthy",
            &[],
            Cost::Cheap,
            |ctx| {
                let mut t = Table::new("T1", "healthy", &["seed"]);
                t.push_row(vec![ctx.seed.to_string()]);
                t
            },
        ));
        r.register(Experiment::new(
            "T2",
            "t2-panic",
            "always panics",
            &[],
            Cost::Cheap,
            |_| panic!("t2 exploded deterministically"),
        ));
        r.register(Experiment::new(
            "T3",
            "t3-slow",
            "sleeps 300 ms",
            &[],
            Cost::Cheap,
            |_| {
                std::thread::sleep(Duration::from_millis(300));
                Table::new("T3", "slow", &["a"])
            },
        ));
        r.register(Experiment::new(
            "T4",
            "t4-ok",
            "healthy too",
            &[],
            Cost::Cheap,
            |_| Table::new("T4", "ok", &["a"]),
        ));
        r
    }

    #[test]
    fn keep_going_quarantines_the_panicking_experiment() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            keep_going: true,
            ..Default::default()
        };
        let mut seen = Vec::new();
        let report = run_suite(&reg.all(), &RunCtx::new(42, 1), &opts, |r| {
            seen.push(r.slug.clone());
        });
        assert_eq!(seen, vec!["t1-ok", "t2-panic", "t3-slow", "t4-ok"]);
        assert!(!report.aborted);
        assert_eq!(report.failures().len(), 1);
        let failure = &report.records[1];
        assert_eq!(
            failure.status,
            RunStatus::Failed {
                message: "t2 exploded deterministically".into()
            }
        );
        assert!(failure.table.is_none());
        // The healthy experiments still produced their tables.
        assert!(report.records[0].table.is_some());
        assert!(report.records[3].table.is_some());
    }

    #[test]
    fn without_keep_going_the_suite_stops_at_the_failure() {
        let reg = toy_registry();
        let report = run_suite(
            &reg.all(),
            &RunCtx::new(42, 1),
            &SuiteOptions::default(),
            |_| {},
        );
        assert!(report.aborted);
        assert_eq!(report.records.len(), 2, "t3/t4 never attempted");
        assert!(report.records[1].status.is_failure());
    }

    #[test]
    fn deadline_marks_slow_experiments_overtime() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            keep_going: true,
            deadline_override: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        let report = run_suite(&reg.select("t3-slow"), &RunCtx::new(42, 1), &opts, |_| {});
        assert_eq!(report.records.len(), 1);
        match &report.records[0].status {
            RunStatus::TimedOut { deadline } => {
                assert_eq!(*deadline, Duration::from_millis(50));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(report.records[0].duration >= Duration::from_millis(50));
    }

    #[test]
    fn generous_deadline_lets_slow_experiments_finish() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            keep_going: true,
            deadline_override: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let report = run_suite(&reg.select("t3-slow"), &RunCtx::new(42, 1), &opts, |_| {});
        assert_eq!(report.records[0].status, RunStatus::Ok);
    }

    #[test]
    fn skip_set_produces_skipped_records_without_running() {
        let reg = toy_registry();
        let opts = SuiteOptions {
            keep_going: false,
            deadline_override: None,
            // Skipping the panicking experiment means nothing fails.
            skip: ["t2-panic".to_owned(), "t1-ok".to_owned()].into(),
        };
        let report = run_suite(&reg.all(), &RunCtx::new(42, 1), &opts, |_| {});
        assert!(report.all_ok());
        assert_eq!(report.records[0].status, RunStatus::Skipped);
        assert_eq!(report.records[1].status, RunStatus::Skipped);
        assert_eq!(report.records[2].status, RunStatus::Ok);
        assert_eq!(report.records[0].duration, Duration::ZERO);
    }

    #[test]
    fn healthy_tables_are_identical_with_and_without_a_neighbor_failing() {
        // The core keep-going promise: a failure changes nothing for
        // the experiments around it.
        let reg = toy_registry();
        let ctx = RunCtx::new(7, 2);
        let opts = SuiteOptions {
            keep_going: true,
            ..Default::default()
        };
        let degraded = run_suite(&reg.all(), &ctx, &opts, |_| {});
        let clean = run_suite(
            &reg.select_many(&["t1-ok", "t4-ok"]),
            &ctx,
            &SuiteOptions::default(),
            |_| {},
        );
        assert_eq!(degraded.records[0].table, clean.records[0].table);
        assert_eq!(degraded.records[3].table, clean.records[1].table);
    }

    #[test]
    fn cost_derived_deadline_is_used_when_no_override() {
        let reg = toy_registry();
        let opts = SuiteOptions::default();
        let exp = &reg.select("t1-ok")[0];
        assert_eq!(opts.deadline_for(exp), Cost::Cheap.deadline());
        let fixed = SuiteOptions {
            deadline_override: Some(Duration::from_secs(1)),
            ..Default::default()
        };
        assert_eq!(fixed.deadline_for(exp), Duration::from_secs(1));
    }
}
