//! Collision-avoidance ranging under adversarial interference (§II-B).
//!
//! A vehicle ranges against the vehicle ahead. If an attacker enlarges
//! the measured distance beyond the braking threshold, the victim brakes
//! too late. The defense is enlargement detection
//! ([`crate::enlargement`]): a flagged measurement is treated as "sensor
//! under attack" and the vehicle falls back to its safe behaviour
//! (brake), converting a safety violation into an availability cost.

use autosec_sim::SimRng;

use crate::attacks::OvershadowAttack;
use crate::enlargement::{EnlargementConfig, EnlargementDetector};

/// Scenario parameters for the collision-avoidance experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionScenario {
    /// True gap to the leading vehicle, in metres.
    pub gap_m: f64,
    /// Distance below which the victim must brake, in metres.
    pub braking_threshold_m: f64,
    /// Whether enlargement detection is enabled.
    pub detection_enabled: bool,
}

impl Default for CollisionScenario {
    fn default() -> Self {
        Self {
            gap_m: 18.0,
            braking_threshold_m: 25.0,
            detection_enabled: true,
        }
    }
}

/// What the victim vehicle ends up doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VehicleAction {
    /// Measured gap below threshold: brake normally. Safe.
    Brake,
    /// Measurement flagged as attacked: defensive brake. Safe but costs
    /// availability.
    DefensiveBrake,
    /// Measured gap above threshold: keep speed. **Unsafe if the true gap
    /// is below threshold.**
    KeepSpeed,
}

/// Result of one collision-avoidance decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionOutcome {
    /// The action taken.
    pub action: VehicleAction,
    /// Whether the decision was unsafe (kept speed inside the braking
    /// zone).
    pub unsafe_decision: bool,
    /// The measured gap (m).
    pub measured_gap_m: f64,
}

/// Collision-avoidance unit built on secure ranging + UWB-ED.
#[derive(Debug, Clone)]
pub struct CollisionAvoidance {
    detector: EnlargementDetector,
    scenario: CollisionScenario,
}

impl CollisionAvoidance {
    /// Creates the unit for a scenario.
    pub fn new(scenario: CollisionScenario) -> Self {
        Self {
            detector: EnlargementDetector::new(EnlargementConfig::default()),
            scenario,
        }
    }

    /// Scenario in use.
    pub fn scenario(&self) -> &CollisionScenario {
        &self.scenario
    }

    /// Executes one ranging + decision cycle.
    pub fn decide(&self, attack: Option<&OvershadowAttack>, rng: &mut SimRng) -> CollisionOutcome {
        let m = self.detector.measure(self.scenario.gap_m, attack, rng);
        let must_brake_truth = self.scenario.gap_m < self.scenario.braking_threshold_m;

        if self.scenario.detection_enabled && m.detected {
            return CollisionOutcome {
                action: VehicleAction::DefensiveBrake,
                unsafe_decision: false,
                measured_gap_m: m.estimated_m,
            };
        }
        if m.estimated_m < self.scenario.braking_threshold_m {
            CollisionOutcome {
                action: VehicleAction::Brake,
                unsafe_decision: false,
                measured_gap_m: m.estimated_m,
            }
        } else {
            CollisionOutcome {
                action: VehicleAction::KeepSpeed,
                unsafe_decision: must_brake_truth,
                measured_gap_m: m.estimated_m,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enlarging_attack() -> OvershadowAttack {
        OvershadowAttack {
            delay_m: 20.0,
            power: 3.0,
            residual: 0.25,
        }
    }

    #[test]
    fn honest_traffic_brakes_correctly() {
        let ca = CollisionAvoidance::new(CollisionScenario::default());
        let mut rng = SimRng::seed(31);
        let mut unsafe_count = 0;
        for _ in 0..40 {
            let out = ca.decide(None, &mut rng);
            if out.unsafe_decision {
                unsafe_count += 1;
            }
        }
        assert_eq!(unsafe_count, 0);
    }

    #[test]
    fn enlargement_without_detection_causes_unsafe_decisions() {
        let ca = CollisionAvoidance::new(CollisionScenario {
            detection_enabled: false,
            ..CollisionScenario::default()
        });
        let atk = enlarging_attack();
        let mut rng = SimRng::seed(32);
        let mut unsafe_count = 0;
        for _ in 0..40 {
            if ca.decide(Some(&atk), &mut rng).unsafe_decision {
                unsafe_count += 1;
            }
        }
        assert!(
            unsafe_count > 30,
            "undetected enlargement should be dangerous ({unsafe_count}/40)"
        );
    }

    #[test]
    fn detection_restores_safety() {
        let ca = CollisionAvoidance::new(CollisionScenario::default());
        let atk = enlarging_attack();
        let mut rng = SimRng::seed(33);
        let mut unsafe_count = 0;
        let mut defensive = 0;
        for _ in 0..40 {
            let out = ca.decide(Some(&atk), &mut rng);
            if out.unsafe_decision {
                unsafe_count += 1;
            }
            if out.action == VehicleAction::DefensiveBrake {
                defensive += 1;
            }
        }
        assert!(
            unsafe_count <= 2,
            "detection should prevent unsafe ({unsafe_count}/40)"
        );
        assert!(
            defensive > 30,
            "attacks should trigger defensive braking ({defensive}/40)"
        );
    }
}
