//! IEEE 802.15.4z Low-Rate-Pulse (LRP) mode: distance bounding at the
//! logical layer combined with distance commitment at the physical layer
//! (paper §II-A, refs \[5]–[7\]).
//!
//! The security argument is information-theoretic rather than
//! signal-processing: each rapid-bit-exchange round sends a fresh
//! challenge bit; the prover's response bit depends on the challenge and
//! a shared secret. An attacker who wants to answer *earlier* than the
//! real prover must commit to response bits before knowing them, so each
//! round is an independent coin flip — `n` rounds push the distance-
//! reduction success probability to `2^-n`.

use autosec_crypto::HmacSha256;
use autosec_sim::SimRng;

/// Configuration of an LRP distance-bounding session.
#[derive(Debug, Clone, PartialEq)]
pub struct LrpConfig {
    /// Number of rapid bit-exchange rounds (32 is typical).
    pub n_rounds: usize,
    /// Shared secret between verifier and prover.
    pub shared_key: Vec<u8>,
    /// Prover turnaround time (processing between challenge receipt and
    /// response), in nanoseconds. Subtracted by the verifier.
    pub turnaround_ns: f64,
    /// One-sigma timing jitter of the round-trip measurement, in
    /// picoseconds.
    pub timing_jitter_ps: f64,
}

impl Default for LrpConfig {
    fn default() -> Self {
        Self {
            n_rounds: 32,
            shared_key: b"lrp demo key".to_vec(),
            turnaround_ns: 10.0,
            timing_jitter_ps: 150.0,
        }
    }
}

/// Adversary against LRP distance bounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrpAttack {
    /// Mafia fraud / early-send: commit response bits `advance_m` of
    /// flight time early, guessing each response bit.
    EarlyCommit {
        /// Metres of distance reduction attempted.
        advance_m: f64,
    },
    /// Pure relay (adds `extra_delay_ns`); answers honestly but later.
    Relay {
        /// Added round-trip processing delay in nanoseconds.
        extra_delay_ns: f64,
    },
}

/// Result of one LRP distance-bounding session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrpOutcome {
    /// Ground truth distance.
    pub true_m: f64,
    /// Estimated distance (`NaN` if the exchange was aborted).
    pub estimated_m: f64,
    /// Whether the verifier aborted (response-bit mismatch).
    pub aborted: bool,
    /// Number of rounds that had correct responses.
    pub correct_rounds: usize,
}

/// An LRP distance-bounding session.
///
/// # Example
///
/// ```
/// use autosec_phy::lrp::{LrpConfig, LrpSession};
/// use autosec_sim::SimRng;
/// let s = LrpSession::new(LrpConfig::default());
/// let out = s.measure(8.0, None, &mut SimRng::seed(2));
/// assert!(!out.aborted);
/// assert!((out.estimated_m - 8.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct LrpSession {
    cfg: LrpConfig,
}

impl LrpSession {
    /// Creates a session.
    pub fn new(cfg: LrpConfig) -> Self {
        Self { cfg }
    }

    /// Configuration in use.
    pub fn config(&self) -> &LrpConfig {
        &self.cfg
    }

    /// Response bit for round `i` given challenge bit `c`: the prover's
    /// registered function `f(c, i) = HMAC(key, i)[bit c]`, modelling the
    /// two pre-committed response registers of classic distance bounding.
    fn response_bit(&self, round: usize, challenge: bool) -> bool {
        let tag = HmacSha256::mac(&self.cfg.shared_key, &(round as u64).to_be_bytes());
        let byte = tag[if challenge { 1 } else { 0 }];
        byte & 1 == 1
    }

    /// Runs the session across `distance_m` with an optional attacker.
    pub fn measure(
        &self,
        distance_m: f64,
        attack: Option<LrpAttack>,
        rng: &mut SimRng,
    ) -> LrpOutcome {
        let mut rtts_ps = Vec::with_capacity(self.cfg.n_rounds);
        let mut correct = 0usize;
        for round in 0..self.cfg.n_rounds {
            let challenge = rng.chance(0.5);
            let expected = self.response_bit(round, challenge);

            // What bit arrives, and with what round-trip time?
            let (bit_ok, rtt_ps) = match attack {
                None => {
                    let rtt = 2.0 * crate::meters_to_ps(distance_m)
                        + self.cfg.turnaround_ns * 1000.0
                        + rng.normal_with(0.0, self.cfg.timing_jitter_ps);
                    (true, rtt)
                }
                Some(LrpAttack::EarlyCommit { advance_m }) => {
                    // The attacker answers before seeing the prover's
                    // response: pure guess.
                    let guess_ok = rng.chance(0.5);
                    let rtt = 2.0 * crate::meters_to_ps((distance_m - advance_m).max(0.0))
                        + self.cfg.turnaround_ns * 1000.0
                        + rng.normal_with(0.0, self.cfg.timing_jitter_ps);
                    (guess_ok, rtt)
                }
                Some(LrpAttack::Relay { extra_delay_ns }) => {
                    let rtt = 2.0 * crate::meters_to_ps(distance_m)
                        + (self.cfg.turnaround_ns + extra_delay_ns) * 1000.0
                        + rng.normal_with(0.0, self.cfg.timing_jitter_ps);
                    (true, rtt)
                }
            };
            let _ = expected; // expected bit is what `bit_ok` is measured against
            if !bit_ok {
                return LrpOutcome {
                    true_m: distance_m,
                    estimated_m: f64::NAN,
                    aborted: true,
                    correct_rounds: correct,
                };
            }
            correct += 1;
            rtts_ps.push(rtt_ps);
        }

        // Median RTT -> distance.
        rtts_ps.sort_by(|a, b| a.partial_cmp(b).expect("no NaN rtt"));
        let median = rtts_ps[rtts_ps.len() / 2];
        let flight_ps = (median - self.cfg.turnaround_ns * 1000.0) / 2.0;
        LrpOutcome {
            true_m: distance_m,
            estimated_m: crate::ps_to_meters(flight_ps.max(0.0)),
            aborted: false,
            correct_rounds: correct,
        }
    }

    /// Theoretical probability that an early-commit attacker survives all
    /// rounds: `2^-n_rounds`.
    pub fn early_commit_success_probability(&self) -> f64 {
        0.5f64.powi(self.cfg.n_rounds as i32)
    }

    /// Distance resolution implied by the timing jitter (one sigma), in
    /// metres.
    pub fn resolution_m(&self) -> f64 {
        crate::ps_to_meters(self.cfg.timing_jitter_ps / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_measurement_is_accurate() {
        let s = LrpSession::new(LrpConfig::default());
        let mut rng = SimRng::seed(5);
        for d in [1.0, 3.0, 10.0, 100.0] {
            let out = s.measure(d, None, &mut rng);
            assert!(!out.aborted);
            assert_eq!(out.correct_rounds, 32);
            assert!(
                (out.estimated_m - d).abs() < 0.2,
                "at {d}: {}",
                out.estimated_m
            );
        }
    }

    #[test]
    fn early_commit_virtually_never_succeeds() {
        let s = LrpSession::new(LrpConfig::default());
        let mut rng = SimRng::seed(6);
        let mut successes = 0;
        for _ in 0..500 {
            let out = s.measure(
                20.0,
                Some(LrpAttack::EarlyCommit { advance_m: 10.0 }),
                &mut rng,
            );
            if !out.aborted && out.true_m - out.estimated_m > 1.0 {
                successes += 1;
            }
        }
        assert_eq!(successes, 0, "2^-32 cannot fire in 500 trials");
        assert!(s.early_commit_success_probability() < 1e-9);
    }

    #[test]
    fn fewer_rounds_weaker_bound() {
        let weak = LrpSession::new(LrpConfig {
            n_rounds: 2,
            ..LrpConfig::default()
        });
        let mut rng = SimRng::seed(7);
        let mut successes = 0;
        let trials = 400;
        for _ in 0..trials {
            let out = weak.measure(
                20.0,
                Some(LrpAttack::EarlyCommit { advance_m: 10.0 }),
                &mut rng,
            );
            if !out.aborted {
                successes += 1;
            }
        }
        // Expect ~25% survive two rounds.
        let rate = successes as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.08, "rate {rate}");
    }

    #[test]
    fn relay_enlarges_distance() {
        let s = LrpSession::new(LrpConfig::default());
        let mut rng = SimRng::seed(8);
        let out = s.measure(
            3.0,
            Some(LrpAttack::Relay {
                extra_delay_ns: 100.0,
            }),
            &mut rng,
        );
        assert!(!out.aborted, "relay answers honestly");
        // 100 ns RTT extra = 50 ns one way ≈ 15 m added.
        assert!(out.estimated_m > 15.0, "estimated {}", out.estimated_m);
    }

    #[test]
    fn abort_reports_progress() {
        let s = LrpSession::new(LrpConfig::default());
        let mut rng = SimRng::seed(9);
        let out = s.measure(
            20.0,
            Some(LrpAttack::EarlyCommit { advance_m: 5.0 }),
            &mut rng,
        );
        if out.aborted {
            assert!(out.correct_rounds < 32);
            assert!(out.estimated_m.is_nan());
        }
    }

    #[test]
    fn response_bits_are_key_dependent() {
        let a = LrpSession::new(LrpConfig::default());
        let b = LrpSession::new(LrpConfig {
            shared_key: b"other key".to_vec(),
            ..LrpConfig::default()
        });
        let mut diff = 0;
        for round in 0..64 {
            for c in [false, true] {
                if a.response_bit(round, c) != b.response_bit(round, c) {
                    diff += 1;
                }
            }
        }
        assert!(diff > 30, "keys should decorrelate responses ({diff}/128)");
    }
}
