//! Propagation channel: line-of-sight delay, multipath taps, path loss and
//! additive white Gaussian noise.

use autosec_sim::SimRng;

use crate::signal::{Waveform, SAMPLES_PER_METER};

/// One multipath echo: excess delay (in samples, relative to the direct
/// path) and amplitude gain relative to the direct path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap {
    /// Excess delay in samples after the line-of-sight path.
    pub excess_delay_samples: usize,
    /// Relative amplitude (0..1 for attenuated echoes).
    pub gain: f64,
}

/// A simulated UWB channel between two transceivers.
///
/// # Example
///
/// ```
/// use autosec_phy::{Channel, Waveform};
/// use autosec_sim::SimRng;
///
/// let ch = Channel::line_of_sight(10.0, 20.0);
/// let mut tx = Waveform::zeros(4);
/// tx.add_impulse(0, 1.0);
/// let rx = ch.propagate(&tx, 200, &mut SimRng::seed(3));
/// assert_eq!(rx.len(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    distance_m: f64,
    taps: Vec<Tap>,
    snr_db: f64,
    /// Amplitude gain of the direct path (models path loss; 1.0 = none).
    direct_gain: f64,
}

impl Channel {
    /// A clean line-of-sight channel at `distance_m` with the given SNR.
    pub fn line_of_sight(distance_m: f64, snr_db: f64) -> Self {
        assert!(distance_m >= 0.0, "negative distance");
        Self {
            distance_m,
            taps: Vec::new(),
            snr_db,
            direct_gain: 1.0,
        }
    }

    /// Adds a typical indoor/urban multipath profile: three echoes of
    /// decreasing strength.
    pub fn with_multipath(mut self) -> Self {
        self.taps = vec![
            Tap {
                excess_delay_samples: 3,
                gain: 0.6,
            },
            Tap {
                excess_delay_samples: 8,
                gain: 0.35,
            },
            Tap {
                excess_delay_samples: 15,
                gain: 0.2,
            },
        ];
        self
    }

    /// Overrides the multipath taps.
    pub fn with_taps(mut self, taps: Vec<Tap>) -> Self {
        self.taps = taps;
        self
    }

    /// Overrides the direct-path gain (e.g. 0.5 for obstructed LoS).
    pub fn with_direct_gain(mut self, gain: f64) -> Self {
        self.direct_gain = gain;
        self
    }

    /// Channel distance in metres.
    pub fn distance_m(&self) -> f64 {
        self.distance_m
    }

    /// One-way flight delay in samples.
    pub fn delay_samples(&self) -> usize {
        (self.distance_m * SAMPLES_PER_METER).round() as usize
    }

    /// Noise standard deviation for a unit-amplitude signal at the
    /// configured SNR.
    pub fn noise_sigma(&self) -> f64 {
        // SNR(dB) = 20 log10(A / sigma) with A = 1.
        10f64.powf(-self.snr_db / 20.0)
    }

    /// Propagates `tx` through the channel into an observation window of
    /// `window_len` samples: applies flight delay, multipath echoes, and
    /// AWGN.
    pub fn propagate(&self, tx: &Waveform, window_len: usize, rng: &mut SimRng) -> Waveform {
        let mut rx = Waveform::zeros(window_len);
        let delay = self.delay_samples() as isize;
        // Direct path.
        let mut direct = tx.clone();
        for s in direct.samples_mut() {
            *s *= self.direct_gain;
        }
        rx.superimpose(&direct, delay);
        // Echoes.
        for tap in &self.taps {
            let mut echo = tx.clone();
            for s in echo.samples_mut() {
                *s *= tap.gain * self.direct_gain;
            }
            rx.superimpose(&echo, delay + tap.excess_delay_samples as isize);
        }
        // Noise.
        let sigma = self.noise_sigma();
        if sigma > 0.0 {
            for s in rx.samples_mut() {
                *s += rng.normal_with(0.0, sigma);
            }
        }
        rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_matches_distance() {
        let ch = Channel::line_of_sight(10.0, 100.0);
        // 10 m ≈ 133 samples.
        assert_eq!(ch.delay_samples(), 133);
    }

    #[test]
    fn clean_channel_preserves_impulse() {
        let ch = Channel::line_of_sight(1.0, 200.0); // essentially noiseless
        let mut tx = Waveform::zeros(1);
        tx.add_impulse(0, 1.0);
        let rx = ch.propagate(&tx, 50, &mut SimRng::seed(1));
        let d = ch.delay_samples();
        assert!((rx.samples()[d] - 1.0).abs() < 1e-6);
        assert!(rx.energy_in(0, d) < 1e-9);
    }

    #[test]
    fn multipath_adds_later_energy() {
        let ch = Channel::line_of_sight(2.0, 200.0).with_multipath();
        let mut tx = Waveform::zeros(1);
        tx.add_impulse(0, 1.0);
        let rx = ch.propagate(&tx, 80, &mut SimRng::seed(2));
        let d = ch.delay_samples();
        assert!((rx.samples()[d] - 1.0).abs() < 1e-6);
        assert!((rx.samples()[d + 3] - 0.6).abs() < 1e-6);
        assert!((rx.samples()[d + 8] - 0.35).abs() < 1e-6);
    }

    #[test]
    fn noise_scales_with_snr() {
        let quiet = Channel::line_of_sight(0.0, 40.0);
        let loud = Channel::line_of_sight(0.0, 10.0);
        assert!(loud.noise_sigma() > quiet.noise_sigma());
        let tx = Waveform::zeros(1);
        let mut rng = SimRng::seed(3);
        let rx = loud.propagate(&tx, 10_000, &mut rng);
        let sigma_est = (rx.energy() / 10_000.0).sqrt();
        assert!((sigma_est - loud.noise_sigma()).abs() / loud.noise_sigma() < 0.05);
    }

    #[test]
    fn direct_gain_attenuates() {
        let ch = Channel::line_of_sight(1.0, 300.0).with_direct_gain(0.5);
        let mut tx = Waveform::zeros(1);
        tx.add_impulse(0, 2.0);
        let rx = ch.propagate(&tx, 30, &mut SimRng::seed(4));
        assert!((rx.samples()[ch.delay_samples()] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "negative distance")]
    fn negative_distance_rejected() {
        let _ = Channel::line_of_sight(-1.0, 10.0);
    }
}
