//! Distance-enlargement detection (UWB-ED style, paper ref \[13\]).
//!
//! §II-B: *"The latter [distance enlargement] is particularly dangerous,
//! as an attacker within the communication range can prevent detection of
//! other vehicles."* An enlargement attacker delays the perceived first
//! path by annihilating the legitimate signal and replaying it later
//! ([`crate::attacks::OvershadowAttack`]). Annihilation is never perfect
//! without exact channel knowledge, so residual energy lingers *before*
//! the claimed first path. UWB-ED detects exactly that: compare the
//! energy in the guard window preceding the claimed arrival against the
//! noise floor.

use autosec_sim::SimRng;

use crate::attacks::OvershadowAttack;
use crate::channel::Channel;
use crate::hrp::{HrpConfig, HrpRanging, ReceiverKind};
use crate::signal::SAMPLES_PER_METER;

/// Configuration for the enlargement-detection experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnlargementConfig {
    /// Underlying HRP configuration (STS, SNR...).
    pub hrp: HrpConfig,
    /// Energy ratio over the noise floor that triggers detection.
    pub energy_threshold: f64,
    /// Guard window inspected before the claimed first path, in samples.
    pub guard_samples: usize,
}

impl Default for EnlargementConfig {
    fn default() -> Self {
        Self {
            hrp: HrpConfig::default(),
            energy_threshold: 1.5,
            guard_samples: 256,
        }
    }
}

/// Outcome of one ranging exchange with enlargement detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnlargementOutcome {
    /// Ground-truth distance in metres.
    pub true_m: f64,
    /// Distance the receiver would report.
    pub estimated_m: f64,
    /// Whether the estimate is enlarged by more than 1 m.
    pub enlarged: bool,
    /// Whether the guard-window energy test flagged the measurement.
    pub detected: bool,
}

/// UWB-ED style verifier: HRP ranging plus pre-arrival energy analysis.
#[derive(Debug, Clone)]
pub struct EnlargementDetector {
    cfg: EnlargementConfig,
    ranging: HrpRanging,
}

impl EnlargementDetector {
    /// Creates a detector.
    pub fn new(cfg: EnlargementConfig) -> Self {
        Self {
            ranging: HrpRanging::new(cfg.hrp, ReceiverKind::IntegrityChecked),
            cfg,
        }
    }

    /// Runs one measurement across `distance_m`, optionally under an
    /// overshadow attack.
    pub fn measure(
        &self,
        distance_m: f64,
        attack: Option<&OvershadowAttack>,
        rng: &mut SimRng,
    ) -> EnlargementOutcome {
        use rand::RngCore;
        let counter = rng.next_u64();
        let template = self.ranging.sts_waveform(counter);
        let channel = Channel::line_of_sight(distance_m, self.cfg.hrp.snr_db);
        let true_delay = channel.delay_samples();
        let extra = attack.map_or(0, |a| a.delay_samples());
        let window = true_delay + extra + template.len() + self.cfg.hrp.window_margin;
        let mut rx = channel.propagate(&template, window, rng);

        if let Some(atk) = attack {
            atk.apply(&mut rx, &template, true_delay);
        }

        // Claimed first path: strongest correlation (the attacker's copy
        // dominates by construction).
        let profile = rx.correlate(&template);
        let (claimed, _) = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("nonempty profile");
        let estimated_m = claimed as f64 / SAMPLES_PER_METER;

        // Guard-window energy test before the claimed path.
        let guard_start = claimed.saturating_sub(self.cfg.guard_samples);
        let guard_energy = rx.energy_in(guard_start, claimed);
        let noise_floor = self.noise_floor_energy(&channel, claimed - guard_start);
        let detected = guard_energy > self.cfg.energy_threshold * noise_floor;

        EnlargementOutcome {
            true_m: distance_m,
            estimated_m,
            enlarged: estimated_m - distance_m > 1.0,
            detected,
        }
    }

    /// Expected noise energy in a window of `len` samples.
    fn noise_floor_energy(&self, channel: &Channel, len: usize) -> f64 {
        let sigma = channel.noise_sigma();
        (sigma * sigma) * len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> EnlargementDetector {
        EnlargementDetector::new(EnlargementConfig::default())
    }

    #[test]
    fn clean_measurement_not_flagged() {
        let det = detector();
        let mut rng = SimRng::seed(11);
        let mut false_alarms = 0;
        for _ in 0..50 {
            let out = det.measure(25.0, None, &mut rng);
            assert!(!out.enlarged);
            if out.detected {
                false_alarms += 1;
            }
        }
        assert!(
            false_alarms <= 2,
            "false alarm rate too high: {false_alarms}/50"
        );
    }

    #[test]
    fn imperfect_annihilation_is_detected() {
        let det = detector();
        let mut rng = SimRng::seed(12);
        let atk = OvershadowAttack {
            delay_m: 15.0,
            power: 3.0,
            residual: 0.3,
        };
        let mut detected = 0;
        let mut enlarged = 0;
        for _ in 0..50 {
            let out = det.measure(25.0, Some(&atk), &mut rng);
            if out.enlarged {
                enlarged += 1;
            }
            if out.detected {
                detected += 1;
            }
        }
        assert!(enlarged > 40, "attack should enlarge ({enlarged}/50)");
        assert!(detected > 45, "UWB-ED should catch residue ({detected}/50)");
    }

    #[test]
    fn perfect_annihilation_evades_energy_test() {
        // The known theoretical limit: zero residue leaves nothing to
        // detect. UWB-ED's guarantee rests on annihilation being
        // physically unrealistic.
        let det = detector();
        let mut rng = SimRng::seed(13);
        let atk = OvershadowAttack {
            delay_m: 15.0,
            power: 3.0,
            residual: 0.0,
        };
        let mut detected = 0;
        for _ in 0..30 {
            let out = det.measure(25.0, Some(&atk), &mut rng);
            if out.detected {
                detected += 1;
            }
        }
        assert!(detected <= 3, "nothing to detect with perfect cancellation");
    }

    #[test]
    fn detection_improves_with_residual() {
        let det = detector();
        let mut rates = Vec::new();
        for residual in [0.05, 0.2, 0.5] {
            let mut rng = SimRng::seed(14);
            let atk = OvershadowAttack {
                delay_m: 12.0,
                power: 3.0,
                residual,
            };
            let mut detected = 0;
            for _ in 0..40 {
                if det.measure(20.0, Some(&atk), &mut rng).detected {
                    detected += 1;
                }
            }
            rates.push(detected);
        }
        assert!(
            rates[0] <= rates[1] && rates[1] <= rates[2],
            "detection should rise with residual: {rates:?}"
        );
    }
}
