//! Passive Keyless Entry and Start (PKES) — the paper's running §II-A
//! example.
//!
//! A PKES unlocks the car when the key fob proves it is within a small
//! radius. The proximity proof is the whole game:
//!
//! - [`ProximityBackend::LegacyRssi`] infers distance from received
//!   signal strength — defeated by an amplifying relay (ref \[1\], the
//!   decade-old attack the paper cites).
//! - [`ProximityBackend::UwbToF`] measures time of flight with secure
//!   HRP/LRP ranging — a relay can only *add* delay, so the fob appears
//!   farther, never closer.

use autosec_sim::SimRng;

use crate::attacks::RelayAttack;
use crate::lrp::{LrpConfig, LrpSession};

/// How the vehicle estimates fob proximity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProximityBackend {
    /// Signal-strength-based legacy system.
    LegacyRssi,
    /// Secure UWB time-of-flight ranging (LRP distance bounding).
    UwbToF,
}

/// PKES state machine states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PkesState {
    /// Doors locked, listening for fob advertisements.
    Locked,
    /// Challenge sent, waiting for the proximity proof.
    Challenging,
    /// Proximity verified; doors unlocked.
    Unlocked,
    /// Proximity check failed or attack detected; stays locked.
    Denied,
}

/// Outcome of one unlock attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnlockAttempt {
    /// Final state.
    pub state: PkesState,
    /// Distance the vehicle believed the fob to be at (m).
    pub perceived_distance_m: f64,
    /// Ground-truth fob distance (m).
    pub actual_distance_m: f64,
}

/// A PKES-equipped vehicle.
///
/// # Example
///
/// ```
/// use autosec_phy::pkes::{Pkes, ProximityBackend};
/// use autosec_sim::SimRng;
/// let pkes = Pkes::new(ProximityBackend::UwbToF, 2.0);
/// let out = pkes.try_unlock(1.0, None, &mut SimRng::seed(1));
/// assert_eq!(out.state, autosec_phy::pkes::PkesState::Unlocked);
/// ```
#[derive(Debug, Clone)]
pub struct Pkes {
    backend: ProximityBackend,
    unlock_radius_m: f64,
    lrp: LrpSession,
}

impl Pkes {
    /// Creates a PKES with the given backend and unlock radius.
    pub fn new(backend: ProximityBackend, unlock_radius_m: f64) -> Self {
        Self {
            backend,
            unlock_radius_m,
            lrp: LrpSession::new(LrpConfig::default()),
        }
    }

    /// Backend in use.
    pub fn backend(&self) -> ProximityBackend {
        self.backend
    }

    /// Attempts an unlock with the fob at `fob_distance_m`, optionally
    /// through a relay.
    pub fn try_unlock(
        &self,
        fob_distance_m: f64,
        relay: Option<&RelayAttack>,
        rng: &mut SimRng,
    ) -> UnlockAttempt {
        // State machine: Locked -> Challenging -> Unlocked | Denied.
        let perceived = match (self.backend, relay) {
            (ProximityBackend::LegacyRssi, None) => fob_distance_m,
            // The relay amplifies: the fob *looks* as close as the relay
            // endpoint regardless of where it really is.
            (ProximityBackend::LegacyRssi, Some(r)) => r.rssi_apparent_distance_m(),
            (ProximityBackend::UwbToF, None) => {
                let out = self.lrp.measure(fob_distance_m, None, rng);
                if out.aborted {
                    return UnlockAttempt {
                        state: PkesState::Denied,
                        perceived_distance_m: f64::NAN,
                        actual_distance_m: fob_distance_m,
                    };
                }
                out.estimated_m
            }
            (ProximityBackend::UwbToF, Some(r)) => {
                // Time of flight through the relayed path: always longer.
                let out = self.lrp.measure(
                    r.tof_apparent_distance_m(),
                    Some(crate::lrp::LrpAttack::Relay {
                        extra_delay_ns: 2.0 * r.processing_ns,
                    }),
                    rng,
                );
                if out.aborted {
                    return UnlockAttempt {
                        state: PkesState::Denied,
                        perceived_distance_m: f64::NAN,
                        actual_distance_m: fob_distance_m,
                    };
                }
                out.estimated_m
            }
        };

        let state = if perceived <= self.unlock_radius_m {
            PkesState::Unlocked
        } else {
            PkesState::Denied
        };
        UnlockAttempt {
            state,
            perceived_distance_m: perceived,
            actual_distance_m: fob_distance_m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_next_to_car_unlocks_both_backends() {
        let mut rng = SimRng::seed(20);
        for backend in [ProximityBackend::LegacyRssi, ProximityBackend::UwbToF] {
            let pkes = Pkes::new(backend, 2.0);
            let out = pkes.try_unlock(1.0, None, &mut rng);
            assert_eq!(out.state, PkesState::Unlocked, "{backend:?}");
        }
    }

    #[test]
    fn distant_fob_denied_both_backends() {
        let mut rng = SimRng::seed(21);
        for backend in [ProximityBackend::LegacyRssi, ProximityBackend::UwbToF] {
            let pkes = Pkes::new(backend, 2.0);
            let out = pkes.try_unlock(40.0, None, &mut rng);
            assert_eq!(out.state, PkesState::Denied, "{backend:?}");
        }
    }

    #[test]
    fn relay_defeats_rssi_pkes() {
        let pkes = Pkes::new(ProximityBackend::LegacyRssi, 2.0);
        let relay = RelayAttack::typical();
        let out = pkes.try_unlock(43.0, Some(&relay), &mut SimRng::seed(22));
        assert_eq!(out.state, PkesState::Unlocked, "the classic car theft");
        assert!(out.perceived_distance_m < 2.0);
        assert!(out.actual_distance_m > 40.0);
    }

    #[test]
    fn relay_fails_against_uwb_tof() {
        let pkes = Pkes::new(ProximityBackend::UwbToF, 2.0);
        let relay = RelayAttack::typical();
        let mut rng = SimRng::seed(23);
        for _ in 0..20 {
            let out = pkes.try_unlock(43.0, Some(&relay), &mut rng);
            assert_eq!(out.state, PkesState::Denied);
            if !out.perceived_distance_m.is_nan() {
                assert!(
                    out.perceived_distance_m > 40.0,
                    "ToF can only enlarge: {}",
                    out.perceived_distance_m
                );
            }
        }
    }

    #[test]
    fn uwb_unlock_radius_is_respected_near_boundary() {
        let pkes = Pkes::new(ProximityBackend::UwbToF, 2.0);
        let mut rng = SimRng::seed(24);
        let near = pkes.try_unlock(1.8, None, &mut rng);
        assert_eq!(near.state, PkesState::Unlocked);
        let far = pkes.try_unlock(2.5, None, &mut rng);
        assert_eq!(far.state, PkesState::Denied);
    }
}
