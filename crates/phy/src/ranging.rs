//! Two-way ranging protocol arithmetic (double-sided TWR).
//!
//! [`crate::hrp`] and [`crate::lrp`] model the *waveform* level; this
//! module models the *protocol* level: message timestamps, independent
//! device clocks with ppm-scale frequency offsets, and the double-sided
//! two-way ranging (DS-TWR) combination that cancels first-order clock
//! drift. Collision-avoidance and PKES both build on this exchange.

use autosec_sim::SimRng;

/// A free-running device clock with a frequency offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceClock {
    /// Frequency offset in parts per million.
    pub offset_ppm: f64,
}

impl DeviceClock {
    /// A perfect clock.
    pub fn ideal() -> Self {
        Self { offset_ppm: 0.0 }
    }

    /// Converts a true duration (ps) into this clock's ticks (ps read).
    pub fn observe_ps(&self, true_ps: f64) -> f64 {
        true_ps * (1.0 + self.offset_ppm * 1e-6)
    }
}

/// Configuration of a DS-TWR exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwrConfig {
    /// Initiator clock.
    pub initiator_clock: DeviceClock,
    /// Responder clock.
    pub responder_clock: DeviceClock,
    /// Responder reply delay (between receiving poll and sending
    /// response), in nanoseconds.
    pub reply_delay_ns: f64,
    /// One-sigma timestamping jitter per timestamp, in picoseconds.
    pub timestamp_jitter_ps: f64,
}

impl Default for TwrConfig {
    fn default() -> Self {
        Self {
            initiator_clock: DeviceClock { offset_ppm: 10.0 },
            responder_clock: DeviceClock { offset_ppm: -8.0 },
            reply_delay_ns: 300_000.0, // 300 us, realistic UWB turnaround
            timestamp_jitter_ps: 100.0,
        }
    }
}

/// Result of a TWR exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwrOutcome {
    /// True distance in metres.
    pub true_m: f64,
    /// Single-sided estimate (suffers clock drift).
    pub ss_estimate_m: f64,
    /// Double-sided estimate (drift cancels to first order).
    pub ds_estimate_m: f64,
}

/// Runs one double-sided two-way ranging exchange over `distance_m`,
/// with `extra_delay_ns` of adversarial path delay (0 for honest runs).
///
/// # Example
///
/// ```
/// use autosec_phy::ranging::{ds_twr, TwrConfig};
/// use autosec_sim::SimRng;
/// let out = ds_twr(12.0, 0.0, &TwrConfig::default(), &mut SimRng::seed(4));
/// assert!((out.ds_estimate_m - 12.0).abs() < 0.5);
/// ```
pub fn ds_twr(
    distance_m: f64,
    extra_delay_ns: f64,
    cfg: &TwrConfig,
    rng: &mut SimRng,
) -> TwrOutcome {
    let tof_ps = crate::meters_to_ps(distance_m) + extra_delay_ns * 1000.0 / 2.0;
    let reply_ps = cfg.reply_delay_ns * 1000.0;
    let mut jitter = || rng.normal_with(0.0, cfg.timestamp_jitter_ps);

    // True event times (ps): poll tx at 0.
    let poll_rx = tof_ps;
    let resp_tx = poll_rx + reply_ps;
    let resp_rx = resp_tx + tof_ps;
    let final_tx = resp_rx + reply_ps;
    let final_rx = final_tx + tof_ps;

    // Timestamps observed on each device's own clock (+ jitter).
    let i = cfg.initiator_clock;
    let r = cfg.responder_clock;
    let t1 = i.observe_ps(0.0) + jitter(); // poll tx (initiator)
    let t2 = r.observe_ps(poll_rx) + jitter(); // poll rx (responder)
    let t3 = r.observe_ps(resp_tx) + jitter(); // resp tx (responder)
    let t4 = i.observe_ps(resp_rx) + jitter(); // resp rx (initiator)
    let t5 = i.observe_ps(final_tx) + jitter(); // final tx (initiator)
    let t6 = r.observe_ps(final_rx) + jitter(); // final rx (responder)

    // Single-sided: ToF = (round1 - reply1) / 2 using only initiator+responder pair 1.
    let round1 = t4 - t1;
    let reply1 = t3 - t2;
    let ss_tof = (round1 - reply1) / 2.0;

    // Double-sided (asymmetric formula):
    // ToF = (round1*round2 - reply1*reply2) / (round1 + round2 + reply1 + reply2)
    let round2 = t6 - t3;
    let reply2 = t5 - t4;
    let ds_tof = (round1 * round2 - reply1 * reply2) / (round1 + round2 + reply1 + reply2);

    TwrOutcome {
        true_m: distance_m,
        ss_estimate_m: crate::ps_to_meters(ss_tof.max(0.0)),
        ds_estimate_m: crate::ps_to_meters(ds_tof.max(0.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clocks_both_accurate() {
        let cfg = TwrConfig {
            initiator_clock: DeviceClock::ideal(),
            responder_clock: DeviceClock::ideal(),
            timestamp_jitter_ps: 0.0,
            ..TwrConfig::default()
        };
        let out = ds_twr(10.0, 0.0, &cfg, &mut SimRng::seed(1));
        assert!((out.ss_estimate_m - 10.0).abs() < 1e-6);
        assert!((out.ds_estimate_m - 10.0).abs() < 1e-6);
    }

    #[test]
    fn clock_drift_breaks_single_sided_not_double_sided() {
        let cfg = TwrConfig {
            initiator_clock: DeviceClock { offset_ppm: 20.0 },
            responder_clock: DeviceClock { offset_ppm: -20.0 },
            timestamp_jitter_ps: 0.0,
            ..TwrConfig::default()
        };
        let out = ds_twr(10.0, 0.0, &cfg, &mut SimRng::seed(2));
        // 40 ppm over a 300 us reply is ~12 ns = ~1.8 m of error.
        let ss_err = (out.ss_estimate_m - 10.0).abs();
        let ds_err = (out.ds_estimate_m - 10.0).abs();
        assert!(ss_err > 1.0, "single-sided should degrade: {ss_err}");
        assert!(ds_err < 0.05, "double-sided should survive: {ds_err}");
    }

    #[test]
    fn adversarial_delay_enlarges() {
        let out = ds_twr(5.0, 100.0, &TwrConfig::default(), &mut SimRng::seed(3));
        // 100 ns round-trip = 50 ns one-way ≈ 15 m.
        assert!(out.ds_estimate_m > 18.0, "{}", out.ds_estimate_m);
    }

    #[test]
    fn jitter_bounded_error() {
        let mut rng = SimRng::seed(4);
        let cfg = TwrConfig::default();
        let errs: Vec<f64> = (0..200)
            .map(|_| (ds_twr(30.0, 0.0, &cfg, &mut rng).ds_estimate_m - 30.0).abs())
            .collect();
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.1, "mean error {mean_err}");
    }

    #[test]
    fn observe_scales_with_ppm() {
        let c = DeviceClock { offset_ppm: 100.0 };
        assert!((c.observe_ps(1e12) - 1.0001e12).abs() < 1.0);
    }
}
