//! V-Range-style secure ranging in 5G (paper §II-B, ref \[12\]).
//!
//! Collision avoidance "rel\[ies\] on inputs from multiple sensors such as
//! LiDAR, RADAR, cameras, and 5G's Positioning Reference Signal (PRS)".
//! V-Range hardens 5G ranging by embedding unpredictable, per-symbol
//! secured bits into the reference signal so that both distance
//! *reduction* (early-commit on OFDM symbols) and *enlargement*
//! (delay-and-replay of symbols) require guessing those bits.
//!
//! This is a protocol-level model (the OFDM waveform itself is not
//! synthesized): per-symbol guessing probabilities are exact, timing
//! resolution follows the signal bandwidth.

use autosec_sim::SimRng;

/// Configuration of a V-Range exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VRangeConfig {
    /// Signal bandwidth in MHz (5G FR1 positioning: up to 100 MHz).
    pub bandwidth_mhz: f64,
    /// Number of ranging symbols per measurement.
    pub n_symbols: usize,
    /// Unpredictable bits embedded per symbol.
    pub secured_bits_per_symbol: u32,
    /// One-sigma timing jitter in nanoseconds.
    pub timing_jitter_ns: f64,
}

impl Default for VRangeConfig {
    fn default() -> Self {
        Self {
            bandwidth_mhz: 100.0,
            n_symbols: 14,
            secured_bits_per_symbol: 4,
            timing_jitter_ns: 1.0,
        }
    }
}

impl VRangeConfig {
    /// Ranging resolution implied by the bandwidth: `c / (2·BW)`.
    pub fn resolution_m(&self) -> f64 {
        crate::C_M_PER_S / (2.0 * self.bandwidth_mhz * 1e6)
    }

    /// Probability that an attacker guesses one symbol's secured bits.
    pub fn per_symbol_guess_probability(&self) -> f64 {
        0.5f64.powi(self.secured_bits_per_symbol as i32)
    }

    /// Probability that a manipulation of `k` symbols goes unnoticed.
    pub fn undetected_manipulation_probability(&self, k: usize) -> f64 {
        self.per_symbol_guess_probability().powi(k as i32)
    }
}

/// Attacks on a V-Range measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VRangeAttack {
    /// Early-commit distance reduction: the attacker must forge every
    /// symbol earlier than it can know the secured bits.
    Reduce {
        /// Metres of attempted reduction.
        advance_m: f64,
    },
    /// Delay-and-replay enlargement: replayed symbols carry the right
    /// bits but wrong timing; the verifier cross-checks a random subset
    /// of `audited_symbols`.
    Enlarge {
        /// Metres of attempted enlargement.
        delay_m: f64,
        /// Symbols the verifier audits for timing consistency.
        audited_symbols: usize,
    },
}

/// Result of one V-Range measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VRangeOutcome {
    /// Ground truth (m).
    pub true_m: f64,
    /// Estimate (m); `NaN` when aborted.
    pub estimated_m: f64,
    /// The verifier aborted (secured-bit mismatch / audit failure).
    pub aborted: bool,
}

/// One V-Range measurement across `distance_m`.
pub fn measure(
    cfg: &VRangeConfig,
    distance_m: f64,
    attack: Option<VRangeAttack>,
    rng: &mut SimRng,
) -> VRangeOutcome {
    let jitter_m = crate::ps_to_meters(rng.normal_with(0.0, cfg.timing_jitter_ns * 1000.0));
    match attack {
        None => VRangeOutcome {
            true_m: distance_m,
            estimated_m: (distance_m + jitter_m).max(0.0),
            aborted: false,
        },
        Some(VRangeAttack::Reduce { advance_m }) => {
            // Every symbol must be forged with correctly guessed bits.
            let p = cfg.per_symbol_guess_probability();
            let all_guessed = (0..cfg.n_symbols).all(|_| rng.chance(p));
            if all_guessed {
                VRangeOutcome {
                    true_m: distance_m,
                    estimated_m: (distance_m - advance_m + jitter_m).max(0.0),
                    aborted: false,
                }
            } else {
                VRangeOutcome {
                    true_m: distance_m,
                    estimated_m: f64::NAN,
                    aborted: true,
                }
            }
        }
        Some(VRangeAttack::Enlarge {
            delay_m,
            audited_symbols,
        }) => {
            // Replay preserves bit content; the audit measures fine
            // timing structure the replay cannot reproduce for audited
            // symbols — each audited symbol exposes the replay with
            // probability 1 - per-symbol-guess.
            let p_evade_one = cfg.per_symbol_guess_probability();
            let evaded = (0..audited_symbols.min(cfg.n_symbols)).all(|_| rng.chance(p_evade_one));
            if evaded {
                VRangeOutcome {
                    true_m: distance_m,
                    estimated_m: distance_m + delay_m + jitter_m,
                    aborted: false,
                }
            } else {
                VRangeOutcome {
                    true_m: distance_m,
                    estimated_m: f64::NAN,
                    aborted: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed(512)
    }

    #[test]
    fn clean_measurement_within_resolution() {
        let cfg = VRangeConfig::default();
        assert!(
            (cfg.resolution_m() - 1.5).abs() < 0.01,
            "{}",
            cfg.resolution_m()
        );
        let mut r = rng();
        for d in [5.0, 50.0, 200.0] {
            let out = measure(&cfg, d, None, &mut r);
            assert!(!out.aborted);
            assert!((out.estimated_m - d).abs() < 1.5, "{}", out.estimated_m);
        }
    }

    #[test]
    fn reduction_virtually_never_succeeds_at_default_strength() {
        // 14 symbols x 4 bits = 2^-56.
        let cfg = VRangeConfig::default();
        assert!(cfg.undetected_manipulation_probability(cfg.n_symbols) < 1e-16);
        let mut r = rng();
        let mut successes = 0;
        for _ in 0..2000 {
            let out = measure(
                &cfg,
                50.0,
                Some(VRangeAttack::Reduce { advance_m: 20.0 }),
                &mut r,
            );
            if !out.aborted {
                successes += 1;
            }
        }
        assert_eq!(successes, 0);
    }

    #[test]
    fn weak_configuration_is_measurably_weaker() {
        let weak = VRangeConfig {
            n_symbols: 2,
            secured_bits_per_symbol: 1,
            ..VRangeConfig::default()
        };
        let mut r = rng();
        let trials = 2000;
        let mut successes = 0;
        for _ in 0..trials {
            let out = measure(
                &weak,
                50.0,
                Some(VRangeAttack::Reduce { advance_m: 20.0 }),
                &mut r,
            );
            if !out.aborted {
                successes += 1;
            }
        }
        // Expected 25%.
        let rate = successes as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.05, "{rate}");
    }

    #[test]
    fn enlargement_detection_scales_with_audit() {
        let cfg = VRangeConfig::default();
        let mut r = rng();
        let mut rates = Vec::new();
        for audited in [0usize, 1, 4] {
            let mut aborted = 0;
            for _ in 0..500 {
                let out = measure(
                    &cfg,
                    30.0,
                    Some(VRangeAttack::Enlarge {
                        delay_m: 15.0,
                        audited_symbols: audited,
                    }),
                    &mut r,
                );
                if out.aborted {
                    aborted += 1;
                }
            }
            rates.push(aborted as f64 / 500.0);
        }
        assert_eq!(rates[0], 0.0, "no audit = no detection");
        assert!(
            rates[1] > 0.9,
            "one audited symbol catches most: {}",
            rates[1]
        );
        assert!(rates[2] > rates[1] - 0.02);
    }

    #[test]
    fn successful_enlargement_actually_enlarges() {
        let cfg = VRangeConfig {
            secured_bits_per_symbol: 0, // trivially evadable: isolate math
            ..VRangeConfig::default()
        };
        let mut r = rng();
        let out = measure(
            &cfg,
            30.0,
            Some(VRangeAttack::Enlarge {
                delay_m: 15.0,
                audited_symbols: 4,
            }),
            &mut r,
        );
        assert!(!out.aborted);
        assert!((out.estimated_m - 45.0).abs() < 1.5);
    }
}
