//! Physical-layer adversary models for distance manipulation.
//!
//! Three families, matching the paper's discussion (§II-A/§II-B):
//!
//! - **Distance reduction** against HRP correlation receivers:
//!   [`HrpAttack::cicada`] (blind early-pulse injection) and
//!   [`HrpAttack::ed_lc`] (early-detect/late-commit with partial STS
//!   knowledge).
//! - **Relay** ([`RelayAttack`]) against PKES: amplify-and-forward between
//!   the car and a far-away key fob. Cannot reduce time-of-flight — it
//!   *adds* processing delay — which is exactly why secure ranging defeats
//!   it while RSSI proximity does not.
//! - **Distance enlargement** ([`OvershadowAttack`]) against collision
//!   avoidance: attenuate/annihilate the legitimate first path and replay
//!   a stronger, delayed copy.

use autosec_sim::SimRng;

use crate::hrp::PULSE_SPREAD;
use crate::signal::{Waveform, SAMPLES_PER_METER};

/// An attack on an HRP STS measurement, applied to the received waveform
/// before time-of-arrival estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct HrpAttack {
    /// How many metres earlier the fake path should appear.
    pub advance_m: f64,
    /// Amplitude of injected pulses relative to the legitimate ones.
    pub power: f64,
    /// Fraction of STS pulse polarities the attacker knows (0 = blind
    /// Cicada-style injection, 1 = full oracle). Early-detect/late-commit
    /// receivers achieve intermediate values.
    pub knowledge: f64,
}

impl HrpAttack {
    /// Blind early-pulse injection (Cicada / ghost-peak style): the
    /// attacker hammers pulses at the advanced position with random
    /// polarity, hoping the correlation spikes early.
    pub fn cicada(advance_m: f64, power: f64) -> Self {
        Self {
            advance_m,
            power,
            knowledge: 0.0,
        }
    }

    /// Early-detect/late-commit: the attacker demodulates part of each
    /// pulse before committing its own, getting `knowledge` of the
    /// polarities right.
    pub fn ed_lc(advance_m: f64, power: f64, knowledge: f64) -> Self {
        Self {
            advance_m,
            power,
            knowledge: knowledge.clamp(0.0, 1.0),
        }
    }

    /// Advance in whole samples.
    pub fn advance_samples(&self) -> usize {
        (self.advance_m * SAMPLES_PER_METER).round() as usize
    }

    /// Injects the attack signal into `rx`.
    ///
    /// `true_delay` is the line-of-sight arrival (samples);
    /// `polarities` are the true STS polarities — the attacker sees each
    /// with probability [`HrpAttack::knowledge`], otherwise guesses.
    pub fn apply(
        &self,
        rx: &mut Waveform,
        true_delay: usize,
        polarities: &[f64],
        rng: &mut SimRng,
    ) {
        let adv = self.advance_samples();
        let start = true_delay.saturating_sub(adv);
        for (i, &true_p) in polarities.iter().enumerate() {
            let p = if rng.chance(self.knowledge) {
                true_p
            } else if rng.chance(0.5) {
                1.0
            } else {
                -1.0
            };
            rx.add_impulse(start + i * PULSE_SPREAD, p * self.power);
        }
    }
}

/// A classic two-sided PKES relay: one device near the car, one near the
/// far-away key fob, forwarding signals both ways.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelayAttack {
    /// Distance from car to the relay endpoint near it, in metres.
    pub car_to_relay_m: f64,
    /// Distance from the fob to its relay endpoint, in metres.
    pub fob_to_relay_m: f64,
    /// Distance bridged between the two relay endpoints, in metres.
    pub relay_span_m: f64,
    /// Per-hop electronic processing delay, in nanoseconds.
    pub processing_ns: f64,
}

impl RelayAttack {
    /// A typical parking-lot relay: car on the driveway, fob 40 m away
    /// inside the house, 15 ns of amplifier latency per direction.
    pub fn typical() -> Self {
        Self {
            car_to_relay_m: 1.0,
            fob_to_relay_m: 2.0,
            relay_span_m: 40.0,
            processing_ns: 15.0,
        }
    }

    /// Total one-way signal path length the relayed signal traverses, in
    /// metres.
    pub fn total_path_m(&self) -> f64 {
        self.car_to_relay_m + self.relay_span_m + self.fob_to_relay_m
    }

    /// The distance a *time-of-flight* ranging system measures through the
    /// relay: full path plus processing delays expressed as light-metres.
    /// Always an **enlargement** relative to the real fob distance —
    /// relays cannot make light faster.
    pub fn tof_apparent_distance_m(&self) -> f64 {
        let processing_m = 2.0 * self.processing_ns * 1e-9 * crate::C_M_PER_S / 2.0;
        self.total_path_m() + processing_m
    }

    /// The apparent proximity an *RSSI-based* legacy PKES infers: the
    /// relay amplifies, so the fob looks as close as the relay endpoint.
    pub fn rssi_apparent_distance_m(&self) -> f64 {
        self.car_to_relay_m
    }
}

/// Distance-enlargement adversary (§II-B): attenuates the legitimate
/// first path (imperfect annihilation) and injects a strong delayed copy,
/// trying to make an approaching object look farther than it is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OvershadowAttack {
    /// Extra distance the attacker wants to add, in metres.
    pub delay_m: f64,
    /// Power of the delayed replayed copy relative to the legitimate path.
    pub power: f64,
    /// Fraction of legitimate first-path amplitude that *survives* the
    /// attacker's annihilation attempt (0 = perfect cancellation, which
    /// is physically unrealistic; UWB-ED exploits the residue).
    pub residual: f64,
}

impl OvershadowAttack {
    /// Delay in samples.
    pub fn delay_samples(&self) -> usize {
        (self.delay_m * SAMPLES_PER_METER).round() as usize
    }

    /// Applies the attack: scales the window containing the legitimate
    /// signal by `residual` and superimposes an amplified copy `delay_m`
    /// later.
    pub fn apply(&self, rx: &mut Waveform, legit: &Waveform, true_delay: usize) {
        // Imperfect annihilation of the legitimate signal.
        let n = legit.len();
        for i in 0..n {
            let idx = true_delay + i;
            if idx < rx.len() {
                let legit_amp = legit.samples()[i];
                // Remove (1 - residual) of the legitimate contribution.
                rx.samples_mut()[idx] -= legit_amp * (1.0 - self.residual);
            }
        }
        // Strong delayed replay.
        let mut copy = legit.clone();
        for s in copy.samples_mut() {
            *s *= self.power;
        }
        rx.superimpose(&copy, (true_delay + self.delay_samples()) as isize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cicada_is_blind() {
        let a = HrpAttack::cicada(5.0, 2.0);
        assert_eq!(a.knowledge, 0.0);
        assert!(a.advance_samples() > 60); // 5 m ≈ 67 samples
    }

    #[test]
    fn ed_lc_clamps_knowledge() {
        assert_eq!(HrpAttack::ed_lc(1.0, 1.0, 1.7).knowledge, 1.0);
        assert_eq!(HrpAttack::ed_lc(1.0, 1.0, -0.3).knowledge, 0.0);
    }

    #[test]
    fn hrp_attack_injects_expected_energy() {
        let a = HrpAttack::cicada(2.0, 3.0);
        let polarities = vec![1.0; 16];
        let mut rx = Waveform::zeros(400);
        let mut rng = SimRng::seed(1);
        a.apply(&mut rx, 200, &polarities, &mut rng);
        // 16 pulses of amplitude 3 → energy 144.
        assert!((rx.energy() - 144.0).abs() < 1e-9);
        let start = 200 - a.advance_samples();
        assert!(rx.samples()[start].abs() > 2.9);
    }

    #[test]
    fn relay_always_enlarges_tof() {
        let r = RelayAttack::typical();
        assert!(r.tof_apparent_distance_m() > r.total_path_m());
        assert!(r.tof_apparent_distance_m() > 43.0);
        assert!(r.rssi_apparent_distance_m() < 2.0);
    }

    #[test]
    fn overshadow_moves_energy_later() {
        let mut legit = Waveform::zeros(4);
        legit.add_impulse(0, 1.0);
        let mut rx = Waveform::zeros(300);
        rx.superimpose(&legit, 100);
        let atk = OvershadowAttack {
            delay_m: 6.0,
            power: 4.0,
            residual: 0.1,
        };
        atk.apply(&mut rx, &legit, 100);
        assert!((rx.samples()[100] - 0.1).abs() < 1e-9, "residual remains");
        let late = 100 + atk.delay_samples();
        assert!((rx.samples()[late] - 4.0).abs() < 1e-9, "strong late copy");
    }

    #[test]
    fn perfect_annihilation_leaves_nothing() {
        let mut legit = Waveform::zeros(1);
        legit.add_impulse(0, 1.0);
        let mut rx = Waveform::zeros(200);
        rx.superimpose(&legit, 50);
        let atk = OvershadowAttack {
            delay_m: 3.0,
            power: 2.0,
            residual: 0.0,
        };
        atk.apply(&mut rx, &legit, 50);
        assert!(rx.samples()[50].abs() < 1e-12);
    }
}
