//! # autosec-phy
//!
//! Physical-layer security workbench (§II of the paper, Fig. 2).
//!
//! Models secure distance measurement with Ultra-Wideband (UWB) signals —
//! the technology the paper highlights for Passive Keyless Entry and Start
//! (PKES) and collision avoidance — at the level where the attacks and
//! defenses actually live: pulse trains on a noisy multipath channel and
//! the receiver algorithms that turn them into time-of-arrival estimates.
//!
//! ## What is modelled
//!
//! - [`signal`] — discrete-time baseband waveforms (250 ps resolution)
//! - [`channel`] — propagation delay, multipath taps, AWGN, attacker
//!   signal superposition
//! - [`hrp`] — IEEE 802.15.4z High-Rate-Pulse mode: pseudorandom Secure
//!   Training Sequences (STS), naive leading-edge correlation receivers
//!   versus integrity-checked receivers (refs \[4\], \[8\])
//! - [`lrp`] — Low-Rate-Pulse mode: logical-layer distance bounding plus
//!   physical-layer distance commitment (refs \[5]–[7\])
//! - [`ranging`] — two-way time-of-flight ranging sessions
//! - [`attacks`] — relay, Cicada-style early-pulse injection, ghost-peak,
//!   early-detect/late-commit, and distance-enlargement (jam/overshadow)
//!   adversaries
//! - [`enlargement`] — UWB-ED style enlargement detection (ref \[13\])
//! - [`pkes`] — the PKES state machine of §II-A with legacy RSSI and
//!   secure UWB ranging back-ends
//! - [`collision`] — §II-B collision-avoidance ranging under adversarial
//!   interference
//! - [`vrange`] — V-Range-style secure 5G PRS ranging (ref \[12\])
//!
//! ## Example
//!
//! ```
//! use autosec_phy::hrp::{HrpConfig, HrpRanging, ReceiverKind};
//! use autosec_sim::SimRng;
//!
//! let mut rng = SimRng::seed(1);
//! let cfg = HrpConfig::default();
//! let session = HrpRanging::new(cfg, ReceiverKind::IntegrityChecked);
//! let outcome = session.measure(30.0, None, &mut rng);
//! // Clean channel: estimate within a metre of the true 30 m distance.
//! assert!((outcome.estimated_m - 30.0).abs() < 1.0);
//! ```

pub mod attacks;
pub mod channel;
pub mod collision;
pub mod enlargement;
pub mod faults;
pub mod hrp;
pub mod lrp;
pub mod pkes;
pub mod ranging;
pub mod signal;
pub mod vrange;

pub use channel::{Channel, Tap};
pub use signal::{Waveform, SAMPLES_PER_METER, SAMPLE_PS};

/// Speed of light in metres per second.
pub const C_M_PER_S: f64 = 299_792_458.0;

/// One-way flight time per metre, in picoseconds.
pub const PS_PER_METER: f64 = 1e12 / C_M_PER_S;

/// Converts a one-way flight time in picoseconds to metres.
pub fn ps_to_meters(ps: f64) -> f64 {
    ps / PS_PER_METER
}

/// Converts a distance in metres to one-way flight time in picoseconds.
pub fn meters_to_ps(m: f64) -> f64 {
    m * PS_PER_METER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_takes_3336ps_per_meter() {
        assert!((meters_to_ps(1.0) - 3335.64).abs() < 0.1);
        assert!((ps_to_meters(meters_to_ps(42.0)) - 42.0).abs() < 1e-9);
    }
}
