//! Physical-layer fault-injection adapter for `autosec-faults`.
//!
//! [`RangingFaultTarget`] runs a batch of UWB HRP ranging sessions under
//! sensor dropout (measurements lost outright) and attacker-energy
//! bursts (Cicada-style early-pulse injection at the given power).
//! Health is the fraction of sessions that produced an accurate,
//! accepted distance estimate; a defended target runs the
//! integrity-checked receiver and treats rejections and missing
//! measurements as detection.

use autosec_sim::inject::{FaultEffect, FaultTarget, InjectionRecord};
use autosec_sim::{ArchLayer, SimRng};

use crate::attacks::HrpAttack;
use crate::hrp::{HrpConfig, HrpRanging, ReceiverKind};

/// A batch of HRP ranging sessions under physical-layer faults.
#[derive(Debug, Clone)]
pub struct RangingFaultTarget {
    /// Ranging sessions per injection round.
    pub sessions: usize,
    /// Ground-truth distance being measured.
    pub distance_m: f64,
    /// Estimate error beyond which a session counts as inaccurate.
    pub tolerance_m: f64,
}

impl Default for RangingFaultTarget {
    fn default() -> Self {
        Self {
            sessions: 20,
            distance_m: 20.0,
            tolerance_m: 1.0,
        }
    }
}

impl FaultTarget for RangingFaultTarget {
    fn layer(&self) -> ArchLayer {
        ArchLayer::Physical
    }

    fn name(&self) -> &'static str {
        "phy-ranging"
    }

    fn apply(
        &mut self,
        effects: &[FaultEffect],
        defended: bool,
        rng: &mut SimRng,
    ) -> InjectionRecord {
        let mut dropout = 0.0f64;
        let mut burst_power = 0.0f64;
        for e in effects {
            match *e {
                FaultEffect::SensorDropout { p } => dropout = dropout.max(p),
                FaultEffect::EnergyBurst { power } => burst_power = burst_power.max(power),
                _ => {}
            }
        }
        if dropout <= 0.0 && burst_power <= 0.0 {
            return InjectionRecord::clean(self.layer(), self.name());
        }

        let receiver = if defended {
            ReceiverKind::IntegrityChecked
        } else {
            ReceiverKind::NaiveLeadingEdge
        };
        let ranging = HrpRanging::new(HrpConfig::default(), receiver);
        let attack = (burst_power > 0.0).then(|| HrpAttack::cicada(6.0, burst_power));

        let mut lost = 0usize;
        let mut rejected = 0usize;
        let mut accurate = 0usize;
        for _ in 0..self.sessions {
            if dropout > 0.0 && rng.chance(dropout) {
                lost += 1;
                continue;
            }
            let out = ranging.measure(self.distance_m, attack.as_ref(), rng);
            if out.rejected {
                rejected += 1;
            } else if (out.estimated_m - out.true_m).abs() <= self.tolerance_m {
                accurate += 1;
            }
        }
        let health = accurate as f64 / self.sessions as f64;
        InjectionRecord {
            layer: self.layer(),
            target: self.name(),
            applied: true,
            health,
            detected: defended && (rejected > 0 || lost > 0),
            detail: format!(
                "{accurate}/{} sessions accurate, {lost} lost, {rejected} rejected",
                self.sessions
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(effects: &[FaultEffect], defended: bool) -> InjectionRecord {
        let mut t = RangingFaultTarget::default();
        let mut rng = SimRng::seed(21).fork("phy-fault");
        t.apply(effects, defended, &mut rng)
    }

    #[test]
    fn no_effects_is_clean() {
        let rec = apply(&[], true);
        assert_eq!(
            rec,
            InjectionRecord::clean(ArchLayer::Physical, "phy-ranging")
        );
    }

    #[test]
    fn total_dropout_kills_service_and_is_noticed() {
        let rec = apply(&[FaultEffect::SensorDropout { p: 1.0 }], true);
        assert_eq!(rec.health, 0.0);
        assert!(rec.detected);
    }

    #[test]
    fn energy_burst_degrades_naive_receiver() {
        let rec = apply(&[FaultEffect::EnergyBurst { power: 3.0 }], false);
        assert!(rec.applied);
        assert!(rec.health < 0.6, "{}", rec.health);
        assert!(!rec.detected, "undefended receiver accepts silently");
    }

    #[test]
    fn defended_receiver_rejects_bursts() {
        // The integrity check fails closed: burst-corrupted sessions are
        // rejected (service lost but the fault is visible) instead of
        // silently reporting a wrong distance like the naive receiver.
        let rec = apply(&[FaultEffect::EnergyBurst { power: 3.0 }], true);
        assert!(rec.detected, "integrity check should reject sessions");
        let naive = apply(&[FaultEffect::EnergyBurst { power: 3.0 }], false);
        assert!(!naive.detected);
    }

    #[test]
    fn deterministic_per_substream() {
        let a = apply(&[FaultEffect::SensorDropout { p: 0.3 }], true);
        let b = apply(&[FaultEffect::SensorDropout { p: 0.3 }], true);
        assert_eq!(a, b);
    }
}
