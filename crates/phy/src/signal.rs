//! Discrete-time baseband waveforms.
//!
//! Everything at the physical layer is a vector of amplitude samples at a
//! fixed 250 ps sample period — fine enough to resolve ~7.5 cm of one-way
//! distance per sample, which is the scale at which the Fig. 2 attacks
//! operate.

use crate::PS_PER_METER;

/// Sample period in picoseconds (4 GS/s).
pub const SAMPLE_PS: f64 = 250.0;

/// Samples of one-way flight per metre of distance (~13.3).
pub const SAMPLES_PER_METER: f64 = PS_PER_METER / SAMPLE_PS;

/// A baseband waveform: amplitude per 250 ps sample.
///
/// # Example
///
/// ```
/// use autosec_phy::Waveform;
/// let mut w = Waveform::zeros(10);
/// w.add_impulse(3, 1.0);
/// assert_eq!(w.samples()[3], 1.0);
/// assert_eq!(w.energy(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    samples: Vec<f64>,
}

impl Waveform {
    /// A silent waveform of `len` samples.
    pub fn zeros(len: usize) -> Self {
        Self {
            samples: vec![0.0; len],
        }
    }

    /// Builds from raw samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Self { samples }
    }

    /// Sample buffer.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable sample buffer.
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Adds an impulse of `amplitude` at sample `idx` (ignored if out of
    /// range — attacker pulses may fall outside the observation window).
    pub fn add_impulse(&mut self, idx: usize, amplitude: f64) {
        if let Some(s) = self.samples.get_mut(idx) {
            *s += amplitude;
        }
    }

    /// Superimposes `other` onto this waveform, offset by `offset` samples;
    /// samples falling outside this waveform are dropped.
    pub fn superimpose(&mut self, other: &Waveform, offset: isize) {
        for (i, &v) in other.samples.iter().enumerate() {
            let idx = i as isize + offset;
            if idx >= 0 && (idx as usize) < self.samples.len() {
                self.samples[idx as usize] += v;
            }
        }
    }

    /// Total signal energy (sum of squared amplitudes).
    pub fn energy(&self) -> f64 {
        self.samples.iter().map(|s| s * s).sum()
    }

    /// Energy within the half-open sample window `[start, end)`, clamped
    /// to the waveform bounds.
    pub fn energy_in(&self, start: usize, end: usize) -> f64 {
        let end = end.min(self.samples.len());
        if start >= end {
            return 0.0;
        }
        self.samples[start..end].iter().map(|s| s * s).sum()
    }

    /// Sliding cross-correlation of this received waveform against a
    /// `template`, evaluated at every candidate offset
    /// `0 ..= len - template.len()`. Returns the raw correlation profile.
    ///
    /// # Panics
    ///
    /// Panics if the template is longer than the waveform or empty.
    pub fn correlate(&self, template: &Waveform) -> Vec<f64> {
        assert!(!template.is_empty(), "empty correlation template");
        assert!(
            template.len() <= self.len(),
            "template longer than waveform"
        );
        let n = self.len() - template.len() + 1;
        let mut out = Vec::with_capacity(n);
        for off in 0..n {
            let mut acc = 0.0;
            for (j, &t) in template.samples.iter().enumerate() {
                if t != 0.0 {
                    acc += t * self.samples[off + j];
                }
            }
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_and_energy() {
        let mut w = Waveform::zeros(8);
        w.add_impulse(2, 2.0);
        w.add_impulse(5, -1.0);
        w.add_impulse(100, 9.0); // silently ignored
        assert_eq!(w.energy(), 5.0);
        assert_eq!(w.energy_in(0, 3), 4.0);
        assert_eq!(w.energy_in(3, 8), 1.0);
        assert_eq!(w.energy_in(6, 3), 0.0);
    }

    #[test]
    fn superimpose_with_offsets() {
        let mut base = Waveform::zeros(5);
        let mut add = Waveform::zeros(2);
        add.add_impulse(0, 1.0);
        add.add_impulse(1, 2.0);
        base.superimpose(&add, 3);
        assert_eq!(base.samples(), &[0.0, 0.0, 0.0, 1.0, 2.0]);
        base.superimpose(&add, -1); // first sample clipped
        assert_eq!(base.samples()[0], 2.0);
        base.superimpose(&add, 4); // second sample clipped
        assert_eq!(base.samples()[4], 3.0);
    }

    #[test]
    fn correlation_peaks_at_true_offset() {
        let mut template = Waveform::zeros(4);
        template.add_impulse(0, 1.0);
        template.add_impulse(2, -1.0);
        let mut rx = Waveform::zeros(16);
        rx.superimpose(&template, 7);
        let profile = rx.correlate(&template);
        let (best, _) = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(best, 7);
    }

    #[test]
    #[should_panic(expected = "template longer")]
    fn correlate_rejects_long_template() {
        let w = Waveform::zeros(3);
        let t = Waveform::zeros(5);
        let _ = w.correlate(&t);
    }

    #[test]
    fn samples_per_meter_is_about_13() {
        assert!((SAMPLES_PER_METER - 13.34).abs() < 0.01);
    }
}
