//! IEEE 802.15.4z High-Rate-Pulse (HRP) mode with Secure Training
//! Sequences (STS).
//!
//! The paper (§II-A) explains the core weakness: *"if cross-correlation is
//! naively applied to compute the time-of-arrival on these STS sequences,
//! it opens the door to distance manipulation attacks"* — and the fix:
//! *"it is critical to implement integrity checks at the receiver"*
//! (refs \[4\], \[8\]). This module implements both receivers so E2 can
//! measure the difference:
//!
//! - [`ReceiverKind::NaiveLeadingEdge`] picks the earliest correlation
//!   peak above a fraction of the maximum — fast, standard, and
//!   vulnerable to early-pulse injection (Cicada / ghost-peak attacks).
//! - [`ReceiverKind::IntegrityChecked`] additionally demands per-pulse
//!   polarity consistency at the claimed first path. An attacker who does
//!   not know the pseudorandom STS polarities agrees on only ~50% of
//!   pulses and is rejected.

use autosec_crypto::AesCtr;
use autosec_sim::SimRng;

use crate::attacks::HrpAttack;
use crate::channel::Channel;
use crate::signal::{Waveform, SAMPLES_PER_METER};

/// Spacing between consecutive STS pulses, in samples.
pub const PULSE_SPREAD: usize = 4;

/// Configuration of an HRP ranging exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HrpConfig {
    /// Number of STS pulses (IEEE 802.15.4z uses 32–4096; 64 keeps the
    /// simulation fast while preserving the statistics).
    pub n_pulses: usize,
    /// Channel signal-to-noise ratio in dB.
    pub snr_db: f64,
    /// Leading-edge threshold as a fraction of the maximum correlation.
    pub threshold_frac: f64,
    /// Minimum per-pulse polarity agreement for the integrity check.
    pub consistency_min: f64,
    /// Minimum absolute per-pulse amplitude counted as a real pulse.
    pub min_pulse_amp: f64,
    /// Extra observation window after the expected arrival, in samples.
    pub window_margin: usize,
    /// 128-bit STS key shared between initiator and responder.
    pub sts_key: [u8; 16],
}

impl Default for HrpConfig {
    fn default() -> Self {
        Self {
            n_pulses: 64,
            snr_db: 20.0,
            threshold_frac: 0.5,
            consistency_min: 0.80,
            min_pulse_amp: 0.35,
            window_margin: 64,
            sts_key: [0x5a; 16],
        }
    }
}

/// Which time-of-arrival algorithm the receiver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReceiverKind {
    /// Earliest correlation sample above `threshold_frac * max` wins.
    NaiveLeadingEdge,
    /// Leading edge plus per-pulse polarity integrity check (refs \[4\], \[8\]).
    IntegrityChecked,
}

/// Result of one HRP ranging measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HrpOutcome {
    /// Ground-truth distance.
    pub true_m: f64,
    /// Distance the receiver reported.
    pub estimated_m: f64,
    /// True minus estimated (positive = distance reduction achieved).
    pub reduction_m: f64,
    /// The receiver refused the measurement (integrity check failed at
    /// every candidate). Treated as attack detected / ranging failed.
    pub rejected: bool,
}

/// One HRP secure-ranging exchange between an initiator and a responder.
#[derive(Debug, Clone)]
pub struct HrpRanging {
    cfg: HrpConfig,
    receiver: ReceiverKind,
}

impl HrpRanging {
    /// Creates a ranging exchange with the given receiver algorithm.
    pub fn new(cfg: HrpConfig, receiver: ReceiverKind) -> Self {
        Self { cfg, receiver }
    }

    /// Configuration in use.
    pub fn config(&self) -> &HrpConfig {
        &self.cfg
    }

    /// Generates the STS pulse polarities for `counter` from the session
    /// key — a fresh pseudorandom sequence per exchange, unpredictable to
    /// an attacker without the key.
    pub fn sts_polarities(&self, counter: u64) -> Vec<f64> {
        let ctr = AesCtr::new(&self.cfg.sts_key);
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&counter.to_be_bytes());
        let n_bytes = self.cfg.n_pulses.div_ceil(8);
        let stream = ctr.process(&iv, &vec![0u8; n_bytes]);
        (0..self.cfg.n_pulses)
            .map(|i| {
                if (stream[i / 8] >> (i % 8)) & 1 == 1 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    /// Builds the transmitted STS waveform for `counter`.
    pub fn sts_waveform(&self, counter: u64) -> Waveform {
        let polarities = self.sts_polarities(counter);
        let mut w = Waveform::zeros(self.cfg.n_pulses * PULSE_SPREAD);
        for (i, &p) in polarities.iter().enumerate() {
            w.add_impulse(i * PULSE_SPREAD, p);
        }
        w
    }

    /// Runs one measurement over a line-of-sight channel of `distance_m`,
    /// with an optional attacker manipulating the received waveform.
    pub fn measure(
        &self,
        distance_m: f64,
        attack: Option<&HrpAttack>,
        rng: &mut SimRng,
    ) -> HrpOutcome {
        let counter = rng.next_u64_counter();
        let template = self.sts_waveform(counter);
        let channel = Channel::line_of_sight(distance_m, self.cfg.snr_db);
        let true_delay = channel.delay_samples();
        let window = true_delay + template.len() + self.cfg.window_margin;
        let mut rx = channel.propagate(&template, window, rng);

        if let Some(atk) = attack {
            atk.apply(&mut rx, true_delay, &self.sts_polarities(counter), rng);
        }

        let toa = self.estimate_toa(&rx, &template, counter);
        match toa {
            Some(delay_samples) => {
                let est_m = delay_samples as f64 / SAMPLES_PER_METER;
                HrpOutcome {
                    true_m: distance_m,
                    estimated_m: est_m,
                    reduction_m: distance_m - est_m,
                    rejected: false,
                }
            }
            None => HrpOutcome {
                true_m: distance_m,
                estimated_m: f64::NAN,
                reduction_m: 0.0,
                rejected: true,
            },
        }
    }

    /// Estimates the time of arrival (in samples) from a received
    /// waveform. `None` means the receiver rejected every candidate.
    fn estimate_toa(&self, rx: &Waveform, template: &Waveform, counter: u64) -> Option<usize> {
        if template.len() > rx.len() {
            return None;
        }
        let profile = rx.correlate(template);
        let max = profile.iter().cloned().fold(f64::MIN, f64::max);
        if max <= 0.0 {
            return None;
        }
        let threshold = self.cfg.threshold_frac * max;
        match self.receiver {
            ReceiverKind::NaiveLeadingEdge => profile.iter().position(|&c| c >= threshold),
            ReceiverKind::IntegrityChecked => {
                let polarities = self.sts_polarities(counter);
                profile
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c >= threshold)
                    .find(|&(off, _)| self.consistency_ok(rx, &polarities, off))
                    .map(|(off, _)| off)
            }
        }
    }

    /// Per-pulse polarity agreement check at candidate offset `off`.
    fn consistency_ok(&self, rx: &Waveform, polarities: &[f64], off: usize) -> bool {
        let mut agree = 0usize;
        for (i, &p) in polarities.iter().enumerate() {
            let idx = off + i * PULSE_SPREAD;
            let s = rx.samples().get(idx).copied().unwrap_or(0.0);
            if s.abs() >= self.cfg.min_pulse_amp && (s > 0.0) == (p > 0.0) {
                agree += 1;
            }
        }
        agree as f64 / polarities.len() as f64 >= self.cfg.consistency_min
    }
}

/// Extension trait-ish helper: deterministic per-measurement counters.
trait CounterSource {
    fn next_u64_counter(&mut self) -> u64;
}

impl CounterSource for SimRng {
    fn next_u64_counter(&mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::HrpAttack;

    fn rng() -> SimRng {
        SimRng::seed(0xC0FFEE)
    }

    #[test]
    fn clean_channel_accurate_for_both_receivers() {
        for kind in [
            ReceiverKind::NaiveLeadingEdge,
            ReceiverKind::IntegrityChecked,
        ] {
            let s = HrpRanging::new(HrpConfig::default(), kind);
            let mut r = rng();
            for d in [1.0, 5.0, 20.0, 50.0] {
                let out = s.measure(d, None, &mut r);
                assert!(!out.rejected, "{kind:?} rejected clean channel at {d} m");
                assert!(
                    (out.estimated_m - d).abs() < 0.5,
                    "{kind:?} at {d} m estimated {}",
                    out.estimated_m
                );
            }
        }
    }

    #[test]
    fn sts_changes_per_counter() {
        let s = HrpRanging::new(HrpConfig::default(), ReceiverKind::NaiveLeadingEdge);
        assert_ne!(s.sts_polarities(1), s.sts_polarities(2));
        assert_eq!(s.sts_polarities(7), s.sts_polarities(7));
    }

    #[test]
    fn sts_depends_on_key() {
        let cfg2 = HrpConfig {
            sts_key: [0x77; 16],
            ..HrpConfig::default()
        };
        let a = HrpRanging::new(HrpConfig::default(), ReceiverKind::NaiveLeadingEdge);
        let b = HrpRanging::new(cfg2, ReceiverKind::NaiveLeadingEdge);
        assert_ne!(a.sts_polarities(1), b.sts_polarities(1));
    }

    #[test]
    fn cicada_beats_naive_but_not_checked() {
        let cfg = HrpConfig::default();
        let attack = HrpAttack::cicada(8.0, 3.0); // reduce by 8 m at 3x power
        let naive = HrpRanging::new(cfg, ReceiverKind::NaiveLeadingEdge);
        let checked = HrpRanging::new(cfg, ReceiverKind::IntegrityChecked);

        let trials = 60;
        let mut naive_wins = 0;
        let mut checked_wins = 0;
        let mut r1 = rng();
        let mut r2 = SimRng::seed(0xBEEF);
        for _ in 0..trials {
            let o = naive.measure(20.0, Some(&attack), &mut r1);
            if !o.rejected && o.reduction_m > 1.0 {
                naive_wins += 1;
            }
            let o = checked.measure(20.0, Some(&attack), &mut r2);
            if !o.rejected && o.reduction_m > 1.0 {
                checked_wins += 1;
            }
        }
        assert!(
            naive_wins > trials / 2,
            "cicada should usually beat the naive receiver (won {naive_wins}/{trials})"
        );
        assert!(
            checked_wins <= trials / 20,
            "integrity check should stop cicada (won {checked_wins}/{trials})"
        );
    }

    #[test]
    fn full_knowledge_attacker_beats_everything() {
        // Sanity: an attacker who somehow knows the STS (knowledge = 1.0)
        // can always fake an early path — the defense is the secrecy of
        // the STS, which the check leverages, not magic.
        let cfg = HrpConfig::default();
        let attack = HrpAttack::ed_lc(5.0, 1.5, 1.0);
        let checked = HrpRanging::new(cfg, ReceiverKind::IntegrityChecked);
        let mut r = rng();
        let mut wins = 0;
        for _ in 0..20 {
            let o = checked.measure(15.0, Some(&attack), &mut r);
            if !o.rejected && o.reduction_m > 1.0 {
                wins += 1;
            }
        }
        assert!(wins >= 18, "oracle attacker won only {wins}/20");
    }

    #[test]
    fn rejection_reports_nan_estimate() {
        let cfg = HrpConfig {
            consistency_min: 1.01, // impossible: force rejection
            ..HrpConfig::default()
        };
        let s = HrpRanging::new(cfg, ReceiverKind::IntegrityChecked);
        let out = s.measure(10.0, None, &mut rng());
        assert!(out.rejected);
        assert!(out.estimated_m.is_nan());
    }
}
