//! The self-healing recovery loop: detect → isolate → reconfigure →
//! verify.
//!
//! Each scheduled fault is injected through its layer's
//! [`FaultTarget`](autosec_sim::FaultTarget) adapter. If the layer's
//! own defenses notice it, the alert feeds the REACT-style
//! [`ResponseEngine`] (isolation), the platform reconfigures (the SDV
//! failover flow is exercised by the software-platform adapter itself),
//! and repair is verified — retried up to a bounded number of attempts.
//! Undetected faults degrade service silently for the rest of the
//! horizon, which is exactly what makes detection worth measuring:
//! MTTR, availability and the degradation curve all come out of this
//! loop.

use autosec_ids::response::{ResponseAction, ResponseEngine};
use autosec_ids::Alert;
use autosec_sim::{ArchLayer, SimDuration, SimRng, SimTime};

use crate::plan::FaultPlan;
use crate::targets::target_for;

/// Recovery-loop tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Observation horizon; unrecovered faults degrade until here.
    pub horizon: SimTime,
    /// Mean fault-detection latency (ms) once a defense notices.
    pub detect_mean_ms: f64,
    /// Mean reconfiguration latency (ms) after isolation.
    pub reconfig_mean_ms: f64,
    /// Mean per-attempt verification latency (ms).
    pub verify_mean_ms: f64,
    /// Verification attempts before the engine gives up.
    pub max_verify_attempts: usize,
    /// Fraction of a fault's health deficit removed by containment
    /// (isolation / limp-home) while repair is still pending.
    pub isolation_relief: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            horizon: SimTime::from_secs(10),
            detect_mean_ms: 20.0,
            reconfig_mean_ms: 30.0,
            verify_mean_ms: 10.0,
            max_verify_attempts: 3,
            isolation_relief: 0.5,
        }
    }
}

/// One fault's journey through the recovery loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// The spec's label.
    pub label: String,
    /// Targeted layer.
    pub layer: ArchLayer,
    /// Effect name (stable, from the catalogue).
    pub effect: &'static str,
    /// When the fault struck.
    pub onset: SimTime,
    /// Residual service level while the fault was active.
    pub health: f64,
    /// Whether the layer's defenses noticed.
    pub detected: bool,
    /// When the alert fired.
    pub detected_at: Option<SimTime>,
    /// When the response engine finished containment.
    pub isolated_at: Option<SimTime>,
    /// The containment action chosen.
    pub action: Option<ResponseAction>,
    /// Verification attempts spent.
    pub verify_attempts: usize,
    /// When repair was verified (None = never recovered).
    pub recovered_at: Option<SimTime>,
}

impl Incident {
    /// When the fault stopped degrading service (recovery or horizon).
    pub fn outage_end(&self, horizon: SimTime) -> SimTime {
        self.recovered_at.unwrap_or(horizon).min(horizon)
    }

    /// The incident's residual health at instant `t`: full before onset
    /// and after verified recovery, raw fault health until containment,
    /// and partially relieved (`relief` of the deficit removed) between
    /// isolation and repair.
    pub fn health_at(&self, t: SimTime, horizon: SimTime, relief: f64) -> f64 {
        if t < self.onset || t >= self.outage_end(horizon) {
            return 1.0;
        }
        match self.isolated_at {
            Some(iso) if t >= iso => 1.0 - (1.0 - self.health) * (1.0 - relief),
            _ => self.health,
        }
    }
}

/// A full recovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Per-fault incidents, in plan order.
    pub incidents: Vec<Incident>,
    /// Observation horizon.
    pub horizon: SimTime,
    /// Whether the layers ran defended.
    pub defended: bool,
    /// Containment relief applied between isolation and repair
    /// (copied from [`RecoveryConfig::isolation_relief`]).
    pub relief: f64,
}

impl RecoveryReport {
    /// Incidents whose fault was noticed.
    pub fn detected(&self) -> usize {
        self.incidents.iter().filter(|i| i.detected).count()
    }

    /// Incidents repaired and verified inside the horizon.
    pub fn recovered(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| i.recovered_at.is_some())
            .count()
    }

    /// Mean time to recovery (onset → verified repair) in ms, over
    /// recovered incidents. Zero if nothing recovered.
    pub fn mttr_ms(&self) -> f64 {
        let recovered: Vec<f64> = self
            .incidents
            .iter()
            .filter_map(|i| i.recovered_at.map(|r| r.since(i.onset).as_ms_f64()))
            .collect();
        if recovered.is_empty() {
            return 0.0;
        }
        recovered.iter().sum::<f64>() / recovered.len() as f64
    }

    /// Service availability over the horizon: the exact time-average of
    /// composite health, where the instantaneous composite is the
    /// product of every active incident's residual health (overlapping
    /// faults compound multiplicatively, not additively).
    pub fn availability(&self) -> f64 {
        let horizon_ps = self.horizon.as_ps();
        if horizon_ps == 0 {
            return 1.0;
        }
        let mut bounds: Vec<u64> = vec![0, horizon_ps];
        for i in &self.incidents {
            bounds.push(i.onset.as_ps().min(horizon_ps));
            bounds.push(i.outage_end(self.horizon).as_ps());
            if let Some(iso) = i.isolated_at {
                bounds.push(iso.as_ps().min(horizon_ps));
            }
        }
        bounds.sort_unstable();
        bounds.dedup();
        let mut acc = 0.0;
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b <= a {
                continue;
            }
            let t = SimTime::from_ps(a);
            acc += self.composite_health(t) * (b - a) as f64;
        }
        acc / horizon_ps as f64
    }

    /// Instantaneous composite service health at `t`: the product of
    /// every incident's [`Incident::health_at`].
    pub fn composite_health(&self, t: SimTime) -> f64 {
        self.incidents
            .iter()
            .map(|i| i.health_at(t, self.horizon, self.relief))
            .product()
    }

    /// Samples composite service health at `samples` evenly spaced
    /// instants — the degradation/recovery curve. Health at an instant
    /// is the product of every active incident's residual health.
    pub fn degradation_curve(&self, samples: usize) -> Vec<(f64, f64)> {
        (0..samples)
            .map(|k| {
                let t = SimTime::from_ps(self.horizon.as_ps() * k as u64 / samples.max(1) as u64);
                (t.as_ms_f64(), self.composite_health(t))
            })
            .collect()
    }
}

/// The detector identity a layer's fault alert is attributed to —
/// chosen so the response playbooks exercise distinct actions. Public
/// so the fleet service mode attributes its live alerts to the same
/// detector identities (and therefore the same playbooks).
pub fn detector_for(layer: ArchLayer) -> &'static str {
    match layer {
        ArchLayer::Network => "specification",
        ArchLayer::Data => "interval",
        ArchLayer::SoftwarePlatform => "fingerprint",
        ArchLayer::Physical => "ranging-watchdog",
        ArchLayer::SystemOfSystems => "sos-monitor",
        ArchLayer::Collaboration => "misbehavior",
    }
}

/// The detect → isolate → reconfigure → verify engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEngine {
    /// Tuning knobs.
    pub cfg: RecoveryConfig,
    /// Whether layers run their defenses (detection requires it).
    pub defended: bool,
}

impl RecoveryEngine {
    /// Engine with default tuning.
    pub fn new(defended: bool) -> Self {
        Self {
            cfg: RecoveryConfig::default(),
            defended,
        }
    }

    /// Runs `plan` to completion. Every random decision comes from
    /// substreams forked off `base` by spec label and index, so the
    /// report is bit-identical per seed regardless of caller threading.
    pub fn run(&self, plan: &FaultPlan, base: &SimRng) -> RecoveryReport {
        let mut responder = ResponseEngine::new();
        let mut incidents = Vec::with_capacity(plan.len());
        for (i, spec) in plan.specs.iter().enumerate() {
            if spec.effect.is_noop() {
                continue;
            }
            let mut rng = base.fork(&spec.label).fork_idx(i as u64);
            let mut target = target_for(spec.effect.layer());
            let rec = target.apply(&[spec.effect], self.defended, &mut rng);
            let mut incident = Incident {
                label: spec.label.clone(),
                layer: spec.effect.layer(),
                effect: spec.effect.name(),
                onset: spec.onset,
                health: rec.health,
                detected: rec.detected,
                detected_at: None,
                isolated_at: None,
                action: None,
                verify_attempts: 0,
                recovered_at: None,
            };
            if rec.detected {
                let detect_ms = rng.exponential(1.0 / self.cfg.detect_mean_ms);
                let detected_at = spec.onset + SimDuration::from_ns_f64(detect_ms * 1e6);
                let alert = Alert {
                    detector: detector_for(spec.effect.layer()),
                    subject: i as u32,
                    at: detected_at,
                    detail: rec.detail.clone(),
                };
                let response = responder.handle(&alert);
                let reconfig_ms = rng.exponential(1.0 / self.cfg.reconfig_mean_ms);
                let mut clock = response.contained_at + SimDuration::from_ns_f64(reconfig_ms * 1e6);
                incident.detected_at = Some(detected_at);
                incident.isolated_at = Some(response.contained_at);
                incident.action = Some(response.action);
                // Verify: repair succeeds per attempt with probability
                // tied to how much service the fault left standing —
                // severe faults are harder to repair and re-verify.
                let p_repair = 0.5 + 0.5 * rec.health;
                for _ in 0..self.cfg.max_verify_attempts {
                    incident.verify_attempts += 1;
                    let verify_ms = rng.exponential(1.0 / self.cfg.verify_mean_ms);
                    clock += SimDuration::from_ns_f64(verify_ms * 1e6);
                    if rng.chance(p_repair) {
                        incident.recovered_at = Some(clock);
                        break;
                    }
                }
            }
            incidents.push(incident);
        }
        RecoveryReport {
            incidents,
            horizon: self.cfg.horizon,
            defended: self.defended,
            relief: self.cfg.isolation_relief,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_sim::FaultEffect;

    fn base() -> SimRng {
        SimRng::seed(404)
    }

    #[test]
    fn empty_plan_yields_pristine_report() {
        let report = RecoveryEngine::new(true).run(&FaultPlan::empty(), &base());
        assert!(report.incidents.is_empty());
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.mttr_ms(), 0.0);
        assert!(report.degradation_curve(8).iter().all(|&(_, h)| h == 1.0));
    }

    #[test]
    fn standard_plan_defended_recovers_most_faults() {
        let plan = FaultPlan::standard(&base());
        let report = RecoveryEngine::new(true).run(&plan, &base());
        assert_eq!(report.incidents.len(), 9);
        assert!(report.detected() >= 6, "detected {}", report.detected());
        assert!(report.recovered() >= 5, "recovered {}", report.recovered());
        assert!(report.mttr_ms() > 0.0);
        assert!(report.availability() > 0.3, "{}", report.availability());
    }

    #[test]
    fn undefended_run_detects_nothing_and_pays_for_it() {
        let plan = FaultPlan::standard(&base());
        let defended = RecoveryEngine::new(true).run(&plan, &base());
        let undefended = RecoveryEngine::new(false).run(&plan, &base());
        assert_eq!(undefended.detected(), 0);
        assert_eq!(undefended.recovered(), 0);
        assert!(
            undefended.availability() < defended.availability(),
            "{} !< {}",
            undefended.availability(),
            defended.availability()
        );
    }

    #[test]
    fn report_is_bit_identical_per_seed() {
        let plan = FaultPlan::standard(&base());
        let a = RecoveryEngine::new(true).run(&plan, &base());
        let b = RecoveryEngine::new(true).run(&plan, &base());
        assert_eq!(a, b);
    }

    #[test]
    fn recovery_pipeline_is_ordered() {
        let plan = FaultPlan::standard(&base());
        let report = RecoveryEngine::new(true).run(&plan, &base());
        for i in &report.incidents {
            if let (Some(d), Some(iso), Some(r)) = (i.detected_at, i.isolated_at, i.recovered_at) {
                assert!(i.onset <= d && d <= iso && iso <= r, "{}", i.label);
            }
            if i.recovered_at.is_some() {
                assert!(i.detected, "recovery requires detection");
                assert!(i.verify_attempts >= 1);
            }
        }
    }

    #[test]
    fn degradation_curve_dips_while_faults_are_active() {
        let plan = FaultPlan::empty().with(
            "drop-all",
            FaultEffect::DropFrames { p: 1.0 },
            SimTime::from_ms(100),
        );
        let report = RecoveryEngine::new(false).run(&plan, &base());
        let curve = report.degradation_curve(20);
        assert_eq!(curve[0].1, 1.0, "healthy before onset");
        assert!(curve.last().unwrap().1 < 1.0, "silent fault never clears");
    }
}
