//! Fault plans: parameterized, scheduled, reproducible.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultSpec`]s — one effect
//! each, with a stable label and an onset on the simulation clock.
//! Onsets of the [`FaultPlan::standard`] plan are drawn from substreams
//! forked off the caller's `SimRng` by label, so a plan is bit-identical
//! for a fixed seed no matter how many worker threads later replay it.

use autosec_sim::{ArchLayer, FaultEffect, SimDuration, SimRng, SimTime};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Stable label — used as the RNG fork label for everything this
    /// fault touches, and in reports.
    pub label: String,
    /// The injected effect.
    pub effect: FaultEffect,
    /// When the fault strikes.
    pub onset: SimTime,
}

/// An ordered set of scheduled faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The scheduled faults, in injection order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan — guaranteed no-op everywhere.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the plan schedules nothing (or only no-op effects).
    pub fn is_noop(&self) -> bool {
        self.specs.iter().all(|s| s.effect.is_noop())
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Builder: appends a fault.
    pub fn with(mut self, label: &str, effect: FaultEffect, onset: SimTime) -> Self {
        self.specs.push(FaultSpec {
            label: label.to_owned(),
            effect,
            onset,
        });
        self
    }

    /// The representative cross-layer plan used by E15: one fault per
    /// family, every layer covered, onsets drawn per-label from `base`
    /// substreams over roughly the first half of a 10 s horizon.
    pub fn standard(base: &SimRng) -> Self {
        Self::standard_over(base, SimDuration::from_secs(10))
    }

    /// [`FaultPlan::standard`] generalized to an arbitrary horizon:
    /// exponential onsets with mean 15% of the horizon, capped at its
    /// midpoint. `standard_over(base, 10 s)` is bit-identical to
    /// `standard(base)` — the exponential draw scales linearly in the
    /// mean from the same underlying uniform draw.
    pub fn standard_over(base: &SimRng, horizon: SimDuration) -> Self {
        let horizon_ms = horizon.as_ms_f64();
        assert!(horizon_ms > 0.0, "fault horizon must be positive");
        let catalog: [(&str, FaultEffect); 9] = [
            ("ivn-drop", FaultEffect::DropFrames { p: 0.4 }),
            (
                "ivn-delay",
                FaultEffect::DelayFrames {
                    p: 0.5,
                    delay: SimDuration::from_ms(5),
                },
            ),
            ("phy-burst", FaultEffect::EnergyBurst { power: 3.0 }),
            ("phy-dropout", FaultEffect::SensorDropout { p: 0.35 }),
            (
                "collab-ghosts",
                FaultEffect::FabricateDetections { count: 5 },
            ),
            ("sdv-restart", FaultEffect::RestartNode { node: 0 }),
            ("sdv-rollback", FaultEffect::RollbackUpdate),
            ("data-skew", FaultEffect::ClockSkew { skew_ns: 2_000.0 }),
            ("sos-links", FaultEffect::FailLinks { p: 0.3 }),
        ];
        let mut plan = FaultPlan::empty();
        for (label, effect) in catalog {
            let mut rng = base.fork(label);
            // Exponential arrival, mean 15% of the horizon, capped at
            // its midpoint (1.5 s / 5 s on the classic 10 s horizon).
            let onset_ms = rng
                .exponential(1.0 / (0.15 * horizon_ms))
                .min(0.5 * horizon_ms);
            plan = plan.with(
                label,
                effect,
                SimTime::ZERO + SimDuration::from_ns_f64(onset_ms * 1e6),
            );
        }
        plan
    }

    /// Effects active at time `t` targeting `layer` (faults persist from
    /// their onset until recovered — the plan itself never clears them).
    pub fn effects_at(&self, t: SimTime, layer: ArchLayer) -> Vec<FaultEffect> {
        self.specs
            .iter()
            .filter(|s| s.onset <= t && s.effect.layer() == layer && !s.effect.is_noop())
            .map(|s| s.effect)
            .collect()
    }

    /// Adapter for [`autosec_core::campaign::run_campaign_faulted`]-style
    /// runners: campaign step `idx` executes at `idx * 100 ms`.
    pub fn campaign_faults(&self) -> impl Fn(usize, ArchLayer) -> Vec<FaultEffect> + '_ {
        move |idx, layer| self.effects_at(SimTime::from_ms(idx as u64 * 100), layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_noop() {
        let p = FaultPlan::empty();
        assert!(p.is_noop() && p.is_empty());
        assert_eq!(
            p.effects_at(SimTime::from_secs(1), ArchLayer::Network),
            vec![]
        );
        assert_eq!(p.campaign_faults()(3, ArchLayer::Physical), vec![]);
    }

    #[test]
    fn standard_plan_covers_every_layer() {
        let p = FaultPlan::standard(&SimRng::seed(1));
        assert_eq!(p.len(), 9);
        for layer in ArchLayer::ALL {
            assert!(
                p.specs.iter().any(|s| s.effect.layer() == layer),
                "{layer} uncovered"
            );
        }
    }

    #[test]
    fn standard_plan_is_seed_deterministic() {
        let a = FaultPlan::standard(&SimRng::seed(7));
        let b = FaultPlan::standard(&SimRng::seed(7));
        assert_eq!(a, b);
        let c = FaultPlan::standard(&SimRng::seed(8));
        assert_ne!(a, c, "different seeds shuffle the onsets");
    }

    #[test]
    fn standard_over_ten_seconds_matches_standard() {
        for seed in [1, 7, 42] {
            let base = SimRng::seed(seed);
            assert_eq!(
                FaultPlan::standard(&base),
                FaultPlan::standard_over(&base, SimDuration::from_secs(10)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn standard_over_scales_onsets_with_the_horizon() {
        let base = SimRng::seed(9);
        let short = FaultPlan::standard_over(&base, SimDuration::from_secs(2));
        let long = FaultPlan::standard_over(&base, SimDuration::from_secs(20));
        assert_eq!(short.len(), long.len());
        for (s, l) in short.specs.iter().zip(&long.specs) {
            assert!(s.onset.as_ps() <= SimTime::from_secs(1).as_ps());
            assert!(l.onset.as_ps() <= SimTime::from_secs(10).as_ps());
            // Same uniform draw, linearly scaled mean: 10x the onset
            // (up to the per-horizon cap and ps rounding).
            let ratio = l.onset.as_ps() as f64 / s.onset.as_ps().max(1) as f64;
            assert!(
                (ratio - 10.0).abs() < 0.01 || l.onset == SimTime::from_secs(10),
                "{}: ratio {ratio}",
                s.label
            );
        }
    }

    #[test]
    fn effects_activate_at_their_onset() {
        let p = FaultPlan::empty().with(
            "x",
            FaultEffect::DropFrames { p: 0.5 },
            SimTime::from_ms(300),
        );
        assert!(p
            .effects_at(SimTime::from_ms(200), ArchLayer::Network)
            .is_empty());
        assert_eq!(
            p.effects_at(SimTime::from_ms(300), ArchLayer::Network),
            vec![FaultEffect::DropFrames { p: 0.5 }]
        );
        // Wrong layer sees nothing.
        assert!(p
            .effects_at(SimTime::from_ms(300), ArchLayer::Physical)
            .is_empty());
    }

    #[test]
    fn noop_effects_never_surface() {
        let p = FaultPlan::empty().with("zero", FaultEffect::DropFrames { p: 0.0 }, SimTime::ZERO);
        assert!(p.is_noop());
        assert!(p
            .effects_at(SimTime::from_secs(1), ArchLayer::Network)
            .is_empty());
    }
}
