//! The per-layer [`FaultTarget`] registry.
//!
//! Each layer crate exposes one adapter; this factory maps an
//! [`ArchLayer`] to a fresh instance so the engine can inject without
//! knowing any layer internals.

use autosec_sim::{ArchLayer, FaultTarget};

/// Builds the layer's fault-target adapter with its default geometry.
pub fn target_for(layer: ArchLayer) -> Box<dyn FaultTarget> {
    match layer {
        ArchLayer::Physical => Box::new(autosec_phy::faults::RangingFaultTarget::default()),
        ArchLayer::Network => Box::new(autosec_ivn::faults::BusFaultTarget::default()),
        ArchLayer::SoftwarePlatform => Box::new(autosec_sdv::faults::PlatformFaultTarget),
        ArchLayer::Data => Box::new(autosec_ids::faults::TimesyncFaultTarget::default()),
        ArchLayer::SystemOfSystems => Box::new(autosec_sos::faults::GraphFaultTarget),
        ArchLayer::Collaboration => {
            Box::new(autosec_collab::faults::PerceptionFaultTarget::default())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_sim::{InjectionRecord, SimRng};

    #[test]
    fn every_layer_has_a_target_reporting_its_own_layer() {
        for layer in ArchLayer::ALL {
            let mut t = target_for(layer);
            assert_eq!(t.layer(), layer);
            assert!(!t.name().is_empty());
            // Clean apply: no effects, no randomness, full health.
            let mut rng = SimRng::seed(1).fork("registry-probe");
            let rec = t.apply(&[], true, &mut rng);
            assert_eq!(rec, InjectionRecord::clean(layer, t.name()));
        }
    }

    #[test]
    fn target_names_are_unique() {
        let mut names: Vec<&'static str> = ArchLayer::ALL
            .iter()
            .map(|&l| target_for(l).name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ArchLayer::ALL.len());
    }
}
