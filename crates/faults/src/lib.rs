//! # autosec-faults
//!
//! Deterministic fault injection and self-healing recovery for the
//! `autosec` workbench — the resilience counterpart to the attack
//! campaign. The paper frames layer defenses in terms of response,
//! reconfiguration and graceful degradation; this crate measures those
//! properties directly:
//!
//! - [`plan`] — [`FaultSpec`]/[`FaultPlan`]: parameterized faults
//!   (frame drop/delay/corrupt/duplicate, energy bursts, sensor
//!   dropout, fabricated detections, node crash/restart, update
//!   rollback, clock skew, link failures) scheduled from forked
//!   `SimRng` substreams — bit-identical per seed at any `--jobs N`
//! - [`targets`] — the per-layer [`FaultTarget`](autosec_sim::FaultTarget)
//!   registry; each layer crate contributes one adapter
//! - [`recovery`] — the [`RecoveryEngine`] running detect → isolate →
//!   reconfigure → verify over a plan, with MTTR, availability and
//!   degradation-curve metrics
//!
//! The injection vocabulary itself ([`autosec_sim::FaultEffect`],
//! [`autosec_sim::ChannelFault`], [`autosec_sim::FaultTarget`]) lives
//! in `autosec-sim` so every layer crate can implement hooks without
//! depending on this engine.
//!
//! ## Example
//!
//! ```
//! use autosec_faults::{FaultPlan, RecoveryEngine};
//! use autosec_sim::SimRng;
//!
//! let base = SimRng::seed(42);
//! let plan = FaultPlan::standard(&base);
//! let report = RecoveryEngine::new(true).run(&plan, &base);
//! assert_eq!(report.incidents.len(), plan.len());
//! assert!(report.availability() > 0.0);
//! // Fault-free == no-op guarantee:
//! let clean = RecoveryEngine::new(true).run(&FaultPlan::empty(), &base);
//! assert_eq!(clean.availability(), 1.0);
//! ```

pub mod plan;
pub mod recovery;
pub mod targets;

pub use plan::{FaultPlan, FaultSpec};
pub use recovery::{detector_for, Incident, RecoveryConfig, RecoveryEngine, RecoveryReport};
pub use targets::target_for;
