//! The verifiable data registry: the paper's "immutable, publicly
//! available storage" with "different trust anchors".
//!
//! Append-only versioned DID documents plus a list of trust anchors and
//! recorded endorsements (authority credentials), from which trust paths
//! are computed. Thread-safe via `parking_lot` so vehicle, cloud, and
//! charging-station actors can share one registry instance.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::credential::VerifiableCredential;
use crate::did::{Did, DidDocument};
use crate::SsiError;

#[derive(Debug, Default)]
struct Inner {
    /// Append-only document versions per DID.
    docs: HashMap<Did, Vec<DidDocument>>,
    /// Trust anchors: (did, label).
    anchors: Vec<(Did, String)>,
    /// Recorded endorsements: subject -> issuer (authority chain edges).
    endorsements: HashMap<Did, Did>,
}

/// The shared verifiable data registry.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the *initial* DID document.
    ///
    /// # Panics
    ///
    /// Panics if the document is not self-certifying or the DID already
    /// exists — the registry is the trust root and refuses inconsistent
    /// writes. Rotations go through [`Registry::publish_rotation`].
    pub fn publish(&self, doc: DidDocument) {
        let mut inner = self.inner.write();
        let versions = inner.docs.entry(doc.id.clone()).or_default();
        assert!(
            versions.is_empty(),
            "DID already registered; use publish_rotation"
        );
        assert!(
            doc.is_self_certifying(),
            "initial DID document must be self-certifying"
        );
        versions.push(doc);
    }

    /// Publishes a key-rotation document. The new document must be
    /// signed with the **previous** key — otherwise anyone could hijack
    /// a DID by publishing version n+1.
    ///
    /// # Errors
    ///
    /// [`SsiError::UnknownDid`] if the DID was never registered;
    /// [`SsiError::BadSignature`] if the version does not increase or
    /// the signature does not verify under the previous key.
    pub fn publish_rotation(
        &self,
        doc: DidDocument,
        prev_key_sig: &autosec_crypto::MssSignature,
    ) -> Result<(), SsiError> {
        let mut inner = self.inner.write();
        let versions = inner
            .docs
            .get_mut(&doc.id)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| SsiError::UnknownDid(doc.id.as_str().to_owned()))?;
        let last = versions.last().expect("nonempty");
        if doc.version <= last.version {
            return Err(SsiError::BadSignature);
        }
        let prev_pk = autosec_crypto::MssPublicKey::from_bytes(last.public_key);
        if !prev_pk.verify(&doc.canonical_bytes(), prev_key_sig) {
            return Err(SsiError::BadSignature);
        }
        versions.push(doc);
        Ok(())
    }

    /// Appends a later document version without a hand-over signature.
    /// Only used by offline-bundle reconstruction, where credentials pin
    /// their signing key version (see `offline.rs` for the argument).
    pub(crate) fn force_publish_version(&self, doc: DidDocument) {
        self.inner
            .write()
            .docs
            .entry(doc.id.clone())
            .or_default()
            .push(doc);
    }

    /// Resolves the latest document for `did`.
    ///
    /// # Errors
    ///
    /// [`SsiError::UnknownDid`] if never published.
    pub fn resolve(&self, did: &Did) -> Result<DidDocument, SsiError> {
        self.inner
            .read()
            .docs
            .get(did)
            .and_then(|v| v.last().cloned())
            .ok_or_else(|| SsiError::UnknownDid(did.as_str().to_owned()))
    }

    /// Full version history (the "immutable" property: old versions stay).
    pub fn history(&self, did: &Did) -> Vec<DidDocument> {
        self.inner.read().docs.get(did).cloned().unwrap_or_default()
    }

    /// Registers `did` as a trust anchor.
    pub fn add_trust_anchor(&self, did: Did, label: &str) {
        self.inner.write().anchors.push((did, label.to_owned()));
    }

    /// All trust anchors.
    pub fn trust_anchors(&self) -> Vec<(Did, String)> {
        self.inner.read().anchors.clone()
    }

    /// Whether `did` is an anchor.
    pub fn is_anchor(&self, did: &Did) -> bool {
        self.inner.read().anchors.iter().any(|(d, _)| d == did)
    }

    /// Records an endorsement edge after verifying the authority
    /// credential (issuer vouches for subject).
    ///
    /// # Errors
    ///
    /// Propagates verification failures; the edge is only recorded for
    /// valid credentials.
    pub fn record_endorsement(&self, cred: &VerifiableCredential) -> Result<(), SsiError> {
        cred.verify(self)?;
        self.inner
            .write()
            .endorsements
            .insert(cred.subject.clone(), cred.issuer.clone());
        Ok(())
    }

    /// Whether a trust path exists from an anchor to the credential's
    /// issuer (directly, or through recorded endorsements; depth ≤ 8,
    /// cycle-safe).
    pub fn trust_path_ok(&self, cred: &VerifiableCredential) -> bool {
        let inner = self.inner.read();
        let mut current = cred.issuer.clone();
        for _ in 0..8 {
            if inner.anchors.iter().any(|(d, _)| *d == current) {
                return true;
            }
            match inner.endorsements.get(&current) {
                Some(parent) if *parent != current => current = parent.clone(),
                _ => return false,
            }
        }
        false
    }

    /// Number of published DIDs.
    pub fn did_count(&self) -> usize {
        self.inner.read().docs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wallet::Wallet;
    use autosec_sim::SimRng;

    #[test]
    fn publish_and_resolve() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(1);
        let w = Wallet::create(&mut rng, "ecu", &reg);
        let doc = reg.resolve(w.did()).unwrap();
        assert_eq!(doc.name, "ecu");
        assert_eq!(reg.did_count(), 1);
    }

    #[test]
    fn unknown_did_errors() {
        let reg = Registry::new();
        let did = Did::from_public_key(&[9u8; 32]);
        assert_eq!(
            reg.resolve(&did).unwrap_err(),
            SsiError::UnknownDid(did.as_str().to_owned())
        );
    }

    #[test]
    fn rotation_keeps_history() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(2);
        let mut w = Wallet::create(&mut rng, "ecu", &reg);
        w.rotate_key(&mut rng, &reg).unwrap();
        let hist = reg.history(w.did());
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].version, 1);
        assert_eq!(hist[1].version, 2);
        assert_eq!(reg.resolve(w.did()).unwrap().version, 2);
    }

    #[test]
    fn unsigned_hijack_rotation_rejected() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(3);
        let victim = Wallet::create(&mut rng, "ecu", &reg);
        let mut mallory = Wallet::create(&mut rng, "mallory", &reg);
        // Mallory forges version 2 of the victim's document with her own
        // key, signed by her own key.
        let mut doc = reg.resolve(victim.did()).unwrap();
        doc.version = 2;
        doc.public_key = reg.resolve(mallory.did()).unwrap().public_key;
        let sig = mallory.sign(&doc.canonical_bytes()).unwrap();
        assert_eq!(
            reg.publish_rotation(doc, &sig).unwrap_err(),
            SsiError::BadSignature
        );
        // Victim's document is untouched.
        assert_eq!(reg.resolve(victim.did()).unwrap().version, 1);
    }

    #[test]
    #[should_panic(expected = "self-certifying")]
    fn forged_initial_document_rejected() {
        let reg = Registry::new();
        let doc = DidDocument {
            id: Did::from_public_key(&[1u8; 32]),
            name: "mallory".into(),
            public_key: [2u8; 32], // does not match the DID
            version: 1,
            service: None,
        };
        reg.publish(doc);
    }

    #[test]
    fn multiple_anchors_coexist() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(4);
        let oem = Wallet::create(&mut rng, "oem", &reg);
        let cloud = Wallet::create(&mut rng, "cloud-provider", &reg);
        reg.add_trust_anchor(oem.did().clone(), "OEM");
        reg.add_trust_anchor(cloud.did().clone(), "Cloud");
        assert_eq!(reg.trust_anchors().len(), 2);
        assert!(reg.is_anchor(oem.did()));
        assert!(reg.is_anchor(cloud.did()));
    }

    #[test]
    fn trust_chain_through_endorsement() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(5);
        let mut anchor = Wallet::create(&mut rng, "anchor", &reg);
        let mut tier1 = Wallet::create(&mut rng, "tier1-supplier", &reg);
        let mut ecu = Wallet::create(&mut rng, "ecu", &reg);
        reg.add_trust_anchor(anchor.did().clone(), "root");

        // anchor endorses tier1; tier1 issues to the ECU.
        let authority = anchor
            .issue(
                tier1.did().clone(),
                serde_json::json!({"authority": "component-certification"}),
                None,
            )
            .unwrap();
        reg.record_endorsement(&authority).unwrap();

        let cred = tier1
            .issue(
                ecu.did().clone(),
                serde_json::json!({"model": "BCU-9"}),
                None,
            )
            .unwrap();
        assert!(cred.verify(&reg).is_ok());
        assert!(reg.trust_path_ok(&cred));

        // An unendorsed issuer has no path.
        let rogue_cred = ecu
            .issue(tier1.did().clone(), serde_json::json!({"x": 1}), None)
            .unwrap();
        assert!(!reg.trust_path_ok(&rogue_cred));
    }
}
