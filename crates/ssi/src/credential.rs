//! Verifiable credentials with linked-document support (§IV-B).

use autosec_crypto::{MssPublicKey, MssSignature, Sha256};
use serde_json::Value;

use crate::did::Did;
use crate::registry::Registry;
use crate::wallet::Wallet;
use crate::SsiError;

/// A signed statement by `issuer` about `subject`.
///
/// Credentials may **link** to other credentials by id — the paper's
/// "signed documents need to be linked, e.g., to describe a complex
/// scenario with different hardware and software components".
#[derive(Debug, Clone)]
pub struct VerifiableCredential {
    /// Content-derived identifier (hash of the canonical bytes).
    pub id: String,
    /// Issuer DID.
    pub issuer: Did,
    /// Subject DID.
    pub subject: Did,
    /// Arbitrary JSON claims.
    pub claims: Value,
    /// Ids of linked credentials.
    pub links: Vec<String>,
    /// Issuance time (logical clock).
    pub issued_at: u64,
    /// Optional expiry (logical clock).
    pub expires_at: Option<u64>,
    /// Version of the issuer's DID document whose key signed this.
    pub issuer_key_version: u32,
    signature: MssSignature,
}

impl VerifiableCredential {
    /// Issues and signs a credential (called via [`Wallet::issue`]).
    ///
    /// # Errors
    ///
    /// [`SsiError::KeyExhausted`] if the wallet's key is spent.
    pub(crate) fn issue(
        issuer: &mut Wallet,
        subject: Did,
        claims: Value,
        links: Vec<String>,
        issued_at: u64,
        expires_at: Option<u64>,
    ) -> Result<Self, SsiError> {
        let issuer_key_version = issuer.doc_version();
        let body = Self::canonical_body(
            issuer.did(),
            &subject,
            &claims,
            &links,
            issued_at,
            expires_at,
            issuer_key_version,
        );
        let signature = issuer.sign(&body)?;
        let id = autosec_crypto::util::to_hex(&Sha256::digest(&body)[..16]);
        Ok(Self {
            id,
            issuer: issuer.did().clone(),
            subject,
            claims,
            links,
            issued_at,
            expires_at,
            issuer_key_version,
            signature,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn canonical_body(
        issuer: &Did,
        subject: &Did,
        claims: &Value,
        links: &[String],
        issued_at: u64,
        expires_at: Option<u64>,
        key_version: u32,
    ) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(b"vc|");
        b.extend_from_slice(issuer.as_str().as_bytes());
        b.push(b'|');
        b.extend_from_slice(subject.as_str().as_bytes());
        b.push(b'|');
        // serde_json's default map is a BTreeMap, so this is canonical.
        b.extend_from_slice(
            serde_json::to_string(claims)
                .expect("claims serialize")
                .as_bytes(),
        );
        for l in links {
            b.push(b'|');
            b.extend_from_slice(l.as_bytes());
        }
        b.extend_from_slice(&issued_at.to_be_bytes());
        b.extend_from_slice(&expires_at.unwrap_or(u64::MAX).to_be_bytes());
        b.extend_from_slice(&key_version.to_be_bytes());
        b
    }

    /// The canonical signed bytes of this credential.
    pub fn signed_bytes(&self) -> Vec<u8> {
        Self::canonical_body(
            &self.issuer,
            &self.subject,
            &self.claims,
            &self.links,
            self.issued_at,
            self.expires_at,
            self.issuer_key_version,
        )
    }

    /// Verifies the signature against the issuer's key **as of the
    /// version that signed it**, resolved from the registry history.
    ///
    /// # Errors
    ///
    /// [`SsiError::UnknownDid`] if the issuer is not registered;
    /// [`SsiError::BadSignature`] on any mismatch.
    pub fn verify(&self, registry: &Registry) -> Result<(), SsiError> {
        let history = registry.history(&self.issuer);
        if history.is_empty() {
            return Err(SsiError::UnknownDid(self.issuer.as_str().to_owned()));
        }
        let doc = history
            .iter()
            .find(|d| d.version == self.issuer_key_version)
            .ok_or(SsiError::BadSignature)?;
        let pk = MssPublicKey::from_bytes(doc.public_key);
        if pk.verify(&self.signed_bytes(), &self.signature) {
            // Recompute the content id to catch id spoofing.
            let expect = autosec_crypto::util::to_hex(&Sha256::digest(&self.signed_bytes())[..16]);
            if expect == self.id {
                return Ok(());
            }
        }
        Err(SsiError::BadSignature)
    }

    /// Validity check at logical time `now`.
    ///
    /// # Errors
    ///
    /// [`SsiError::Expired`] outside the validity window.
    pub fn check_validity(&self, now: u64) -> Result<(), SsiError> {
        if now < self.issued_at {
            return Err(SsiError::Expired);
        }
        if let Some(exp) = self.expires_at {
            if now >= exp {
                return Err(SsiError::Expired);
            }
        }
        Ok(())
    }

    /// Verifies this credential *and* every linked credential in
    /// `linked`, ensuring all links resolve (the complex-scenario
    /// document graph of §IV-B).
    ///
    /// # Errors
    ///
    /// Propagates verification failures; [`SsiError::UnknownDid`] if a
    /// link cannot be resolved in `linked`.
    pub fn verify_with_links(
        &self,
        registry: &Registry,
        linked: &[VerifiableCredential],
    ) -> Result<(), SsiError> {
        self.verify(registry)?;
        for link in &self.links {
            let target = linked
                .iter()
                .find(|c| &c.id == link)
                .ok_or_else(|| SsiError::UnknownDid(format!("linked credential {link}")))?;
            target.verify(registry)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_sim::SimRng;

    fn setup() -> (Registry, Wallet, Wallet, SimRng) {
        let reg = Registry::new();
        let mut rng = SimRng::seed(42);
        let issuer = Wallet::create(&mut rng, "oem", &reg);
        let subject = Wallet::create(&mut rng, "ecu", &reg);
        (reg, issuer, subject, rng)
    }

    #[test]
    fn issue_and_verify() {
        let (reg, mut issuer, subject, _) = setup();
        let cred = issuer
            .issue(
                subject.did().clone(),
                serde_json::json!({"fw": "1.2.3"}),
                None,
            )
            .unwrap();
        assert!(cred.verify(&reg).is_ok());
    }

    #[test]
    fn claim_tamper_detected() {
        let (reg, mut issuer, subject, _) = setup();
        let mut cred = issuer
            .issue(
                subject.did().clone(),
                serde_json::json!({"fw": "1.2.3"}),
                None,
            )
            .unwrap();
        cred.claims = serde_json::json!({"fw": "6.6.6"});
        assert_eq!(cred.verify(&reg).unwrap_err(), SsiError::BadSignature);
    }

    #[test]
    fn subject_tamper_detected() {
        let (reg, mut issuer, subject, mut rng) = setup();
        let other = Wallet::create(&mut rng, "other-ecu", &reg);
        let mut cred = issuer
            .issue(subject.did().clone(), serde_json::json!({"ok": true}), None)
            .unwrap();
        cred.subject = other.did().clone();
        assert_eq!(cred.verify(&reg).unwrap_err(), SsiError::BadSignature);
    }

    #[test]
    fn unknown_issuer_fails() {
        let (_, mut issuer, subject, _) = setup();
        let cred = issuer
            .issue(subject.did().clone(), serde_json::json!({}), None)
            .unwrap();
        let empty = Registry::new();
        assert!(matches!(
            cred.verify(&empty).unwrap_err(),
            SsiError::UnknownDid(_)
        ));
    }

    #[test]
    fn validity_window_enforced() {
        let (_, mut issuer, subject, _) = setup();
        let cred = issuer
            .issue_with_validity(
                subject.did().clone(),
                serde_json::json!({}),
                None,
                100,
                Some(200),
            )
            .unwrap();
        assert_eq!(cred.check_validity(50).unwrap_err(), SsiError::Expired);
        assert!(cred.check_validity(150).is_ok());
        assert_eq!(cred.check_validity(200).unwrap_err(), SsiError::Expired);
    }

    #[test]
    fn credentials_survive_key_rotation() {
        let (reg, mut issuer, subject, mut rng) = setup();
        let old_cred = issuer
            .issue(subject.did().clone(), serde_json::json!({"epoch": 1}), None)
            .unwrap();
        issuer.rotate_key(&mut rng, &reg).unwrap();
        let new_cred = issuer
            .issue(subject.did().clone(), serde_json::json!({"epoch": 2}), None)
            .unwrap();
        // Both verify: each against its own key version.
        assert!(old_cred.verify(&reg).is_ok());
        assert!(new_cred.verify(&reg).is_ok());
        assert_ne!(old_cred.issuer_key_version, new_cred.issuer_key_version);
    }

    #[test]
    fn linked_documents_verify_as_a_graph() {
        let (reg, mut issuer, subject, _) = setup();
        let hw = issuer
            .issue(
                subject.did().clone(),
                serde_json::json!({"hw": "rev-b"}),
                None,
            )
            .unwrap();
        let sw = issuer
            .issue(
                subject.did().clone(),
                serde_json::json!({"sw": "3.1"}),
                Some(vec![hw.id.clone()]),
            )
            .unwrap();
        assert!(sw
            .verify_with_links(&reg, std::slice::from_ref(&hw))
            .is_ok());
        // Missing link.
        assert!(matches!(
            sw.verify_with_links(&reg, &[]).unwrap_err(),
            SsiError::UnknownDid(_)
        ));
    }

    #[test]
    fn id_is_content_derived() {
        let (reg, mut issuer, subject, _) = setup();
        let mut cred = issuer
            .issue(subject.did().clone(), serde_json::json!({"a": 1}), None)
            .unwrap();
        cred.id = "0000".into();
        assert_eq!(cred.verify(&reg).unwrap_err(), SsiError::BadSignature);
    }
}
