//! # autosec-ssi
//!
//! Self-sovereign identity substrate — §IV of the paper.
//!
//! The paper argues SSI is the right trust infrastructure for
//! software-defined vehicles because hardware, software, and cloud
//! components "often originate from different companies that may want to
//! check the authenticity of a piece of software by themselves" — i.e.
//! **multiple trust anchors** over a shared, immutable registry, instead
//! of one central PKI.
//!
//! This crate implements that infrastructure:
//!
//! - [`did`] — decentralized identifiers and DID documents
//! - [`registry`] — the verifiable data registry ("immutable, publicly
//!   available storage"): append-only versioned DID documents plus trust
//!   anchor lists (did:web-like resolution without the HTTP)
//! - [`wallet`] — key management: a stateful hash-based signature key
//!   (see `DESIGN.md` for the substitution rationale) bound to a DID
//! - [`credential`] — verifiable credentials with linked-document
//!   references (§IV-B's "signed documents need to be linked")
//! - [`presentation`] — holder-bound verifiable presentations with
//!   challenge freshness
//! - [`revocation`] — signed revocation lists
//! - [`offline`] — §IV-C's offline scenario: self-contained verification
//!   bundles that validate with zero registry access
//!
//! ## Example
//!
//! ```
//! use autosec_ssi::prelude::*;
//! use autosec_sim::SimRng;
//!
//! let mut rng = SimRng::seed(7);
//! let registry = Registry::new();
//! let mut oem = Wallet::create(&mut rng, "oem", &registry);
//! registry.add_trust_anchor(oem.did().clone(), "OEM root");
//! let mut ecu = Wallet::create(&mut rng, "brake-ecu", &registry);
//!
//! let cred = oem
//!     .issue(ecu.did().clone(), serde_json::json!({"role": "brake-controller"}), None)
//!     .unwrap();
//! assert!(cred.verify(&registry).is_ok());
//! assert!(registry.trust_path_ok(&cred));
//! ```

pub mod credential;
pub mod did;
pub mod offline;
pub mod presentation;
pub mod registry;
pub mod revocation;
pub mod wallet;

/// Convenient glob import.
pub mod prelude {
    pub use crate::credential::VerifiableCredential;
    pub use crate::did::{Did, DidDocument};
    pub use crate::offline::OfflineBundle;
    pub use crate::presentation::VerifiablePresentation;
    pub use crate::registry::Registry;
    pub use crate::revocation::RevocationList;
    pub use crate::wallet::Wallet;
    pub use crate::SsiError;
}

/// Errors of the SSI layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsiError {
    /// DID not present in the registry.
    UnknownDid(String),
    /// Signature did not verify.
    BadSignature,
    /// Credential expired (or not yet valid).
    Expired,
    /// Credential is on the issuer's revocation list.
    Revoked,
    /// No trust path from an accepted anchor to the issuer.
    Untrusted,
    /// Presentation challenge mismatch (replay defense).
    ChallengeMismatch,
    /// The signing key has no one-time leaves left.
    KeyExhausted,
}

impl std::fmt::Display for SsiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsiError::UnknownDid(d) => write!(f, "unknown DID: {d}"),
            SsiError::BadSignature => write!(f, "signature verification failed"),
            SsiError::Expired => write!(f, "credential outside validity period"),
            SsiError::Revoked => write!(f, "credential revoked"),
            SsiError::Untrusted => write!(f, "no trust path to an accepted anchor"),
            SsiError::ChallengeMismatch => write!(f, "presentation challenge mismatch"),
            SsiError::KeyExhausted => write!(f, "signing key exhausted"),
        }
    }
}

impl std::error::Error for SsiError {}
