//! Identity wallets: key material plus the DID it backs.
//!
//! A wallet holds a stateful Merkle signature key (`autosec-crypto`'s
//! [`MssKeyPair`]) — the hash-based substitute for the elliptic-curve
//! keys real SSI stacks use (see `DESIGN.md`). Key rotation publishes a
//! new DID-document version, exactly the flow a software-defined vehicle
//! needs when a component is replaced.

use autosec_crypto::{MssKeyPair, MssSignature};
use autosec_sim::SimRng;
use serde_json::Value;

use crate::credential::VerifiableCredential;
use crate::did::{Did, DidDocument};
use crate::registry::Registry;
use crate::SsiError;

/// Default MSS tree height: 2^6 = 64 signatures per key version.
pub const DEFAULT_KEY_HEIGHT: u8 = 6;

/// An identity wallet.
#[derive(Debug)]
pub struct Wallet {
    did: Did,
    name: String,
    keypair: MssKeyPair,
    doc_version: u32,
}

impl Wallet {
    /// Generates a key pair, derives the DID, and publishes the initial
    /// DID document to `registry`.
    pub fn create(rng: &mut SimRng, name: &str, registry: &Registry) -> Self {
        Self::create_with_height(rng, name, registry, DEFAULT_KEY_HEIGHT)
    }

    /// [`Wallet::create`] with an explicit key capacity (`2^height`
    /// signatures).
    pub fn create_with_height(
        rng: &mut SimRng,
        name: &str,
        registry: &Registry,
        height: u8,
    ) -> Self {
        let keypair = MssKeyPair::generate(rng, height);
        let pk = *keypair.public_key().as_bytes();
        let did = Did::from_public_key(&pk);
        let doc = DidDocument {
            id: did.clone(),
            name: name.to_owned(),
            public_key: pk,
            version: 1,
            service: None,
        };
        registry.publish(doc);
        Self {
            did,
            name: name.to_owned(),
            keypair,
            doc_version: 1,
        }
    }

    /// This wallet's DID.
    pub fn did(&self) -> &Did {
        &self.did
    }

    /// Subject name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current DID-document version this wallet's key corresponds to.
    pub fn doc_version(&self) -> u32 {
        self.doc_version
    }

    /// Remaining one-time signatures before rotation is forced.
    pub fn signatures_remaining(&self) -> usize {
        self.keypair.remaining()
    }

    /// Rotates to a fresh key, publishing the next DID-document version
    /// signed with the *previous* key (the registry rejects anything
    /// else).
    ///
    /// The DID itself is stable (it commits to the *initial* key); the
    /// registry history provides the hand-over trail. Rotate **before**
    /// the old key is exhausted — the hand-over signature needs one leaf.
    ///
    /// # Errors
    ///
    /// [`SsiError::KeyExhausted`] if no leaf remains to sign the
    /// hand-over; propagates registry rejections.
    pub fn rotate_key(&mut self, rng: &mut SimRng, registry: &Registry) -> Result<(), SsiError> {
        let next = MssKeyPair::generate(rng, DEFAULT_KEY_HEIGHT);
        let doc = DidDocument {
            id: self.did.clone(),
            name: self.name.clone(),
            public_key: *next.public_key().as_bytes(),
            version: self.doc_version + 1,
            service: None,
        };
        let sig = self
            .keypair
            .sign(&doc.canonical_bytes())
            .map_err(|_| SsiError::KeyExhausted)?;
        registry.publish_rotation(doc, &sig)?;
        self.doc_version += 1;
        self.keypair = next;
        Ok(())
    }

    /// Signs raw bytes.
    ///
    /// # Errors
    ///
    /// [`SsiError::KeyExhausted`] when the key has no leaves left.
    pub fn sign(&mut self, message: &[u8]) -> Result<MssSignature, SsiError> {
        self.keypair
            .sign(message)
            .map_err(|_| SsiError::KeyExhausted)
    }

    /// Issues a credential about `subject` with `claims`; `links` are ids
    /// of related credentials (§IV-B's linked signed documents).
    ///
    /// # Errors
    ///
    /// [`SsiError::KeyExhausted`] if the signing key is spent.
    pub fn issue(
        &mut self,
        subject: Did,
        claims: Value,
        links: Option<Vec<String>>,
    ) -> Result<VerifiableCredential, SsiError> {
        self.issue_with_validity(subject, claims, links, 0, None)
    }

    /// [`Wallet::issue`] with an explicit validity period (logical
    /// timestamps).
    ///
    /// # Errors
    ///
    /// [`SsiError::KeyExhausted`] if the signing key is spent.
    pub fn issue_with_validity(
        &mut self,
        subject: Did,
        claims: Value,
        links: Option<Vec<String>>,
        issued_at: u64,
        expires_at: Option<u64>,
    ) -> Result<VerifiableCredential, SsiError> {
        VerifiableCredential::issue(
            self,
            subject,
            claims,
            links.unwrap_or_default(),
            issued_at,
            expires_at,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wallet_publishes_on_create() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(10);
        let w = Wallet::create(&mut rng, "vehicle", &reg);
        assert_eq!(reg.resolve(w.did()).unwrap().name, "vehicle");
        assert_eq!(w.signatures_remaining(), 64);
    }

    #[test]
    fn signing_consumes_capacity() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(11);
        let mut w = Wallet::create_with_height(&mut rng, "ecu", &reg, 2);
        assert_eq!(w.signatures_remaining(), 4);
        w.sign(b"m").unwrap();
        assert_eq!(w.signatures_remaining(), 3);
    }

    #[test]
    fn rotation_before_exhaustion_recovers_capacity() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(12);
        let mut w = Wallet::create_with_height(&mut rng, "ecu", &reg, 2);
        w.sign(b"1").unwrap();
        w.sign(b"2").unwrap();
        w.sign(b"3").unwrap();
        // One leaf left: exactly enough for the hand-over signature.
        w.rotate_key(&mut rng, &reg).unwrap();
        assert!(w.sign(b"4").is_ok());
        assert_eq!(reg.resolve(w.did()).unwrap().version, 2);
    }

    #[test]
    fn fully_exhausted_key_cannot_rotate() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(14);
        let mut w = Wallet::create_with_height(&mut rng, "ecu", &reg, 1);
        w.sign(b"1").unwrap();
        w.sign(b"2").unwrap();
        assert_eq!(
            w.rotate_key(&mut rng, &reg).unwrap_err(),
            SsiError::KeyExhausted
        );
    }

    #[test]
    fn did_stable_across_rotation() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(13);
        let mut w = Wallet::create(&mut rng, "ecu", &reg);
        let did_before = w.did().clone();
        w.rotate_key(&mut rng, &reg).unwrap();
        assert_eq!(*w.did(), did_before);
    }
}
