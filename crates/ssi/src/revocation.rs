//! Signed revocation lists.
//!
//! Issuers publish a monotonically versioned, signed list of revoked
//! credential ids. Verifiers fetch it (or carry a snapshot in an offline
//! bundle) and reject revoked credentials.

use std::collections::BTreeSet;

use autosec_crypto::{MssPublicKey, MssSignature};

use crate::credential::VerifiableCredential;
use crate::did::Did;
use crate::registry::Registry;
use crate::wallet::Wallet;
use crate::SsiError;

/// A signed revocation list for one issuer.
#[derive(Debug, Clone)]
pub struct RevocationList {
    /// The issuer whose credentials this list covers.
    pub issuer: Did,
    /// List version (monotonic).
    pub version: u64,
    /// Revoked credential ids.
    pub revoked: BTreeSet<String>,
    /// Signing key version of the issuer.
    pub issuer_key_version: u32,
    signature: MssSignature,
}

impl RevocationList {
    fn signed_bytes(issuer: &Did, version: u64, revoked: &BTreeSet<String>) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(b"rl|");
        b.extend_from_slice(issuer.as_str().as_bytes());
        b.extend_from_slice(&version.to_be_bytes());
        for id in revoked {
            b.push(b'|');
            b.extend_from_slice(id.as_bytes());
        }
        b
    }

    /// Creates and signs a new list version.
    ///
    /// # Errors
    ///
    /// [`SsiError::KeyExhausted`] if the issuer's key is spent.
    pub fn create(
        issuer: &mut Wallet,
        version: u64,
        revoked: BTreeSet<String>,
    ) -> Result<Self, SsiError> {
        let body = Self::signed_bytes(issuer.did(), version, &revoked);
        let issuer_key_version = issuer.doc_version();
        let signature = issuer.sign(&body)?;
        Ok(Self {
            issuer: issuer.did().clone(),
            version,
            revoked,
            issuer_key_version,
            signature,
        })
    }

    /// Verifies the list's signature against the registry.
    ///
    /// # Errors
    ///
    /// [`SsiError::UnknownDid`] / [`SsiError::BadSignature`] as usual.
    pub fn verify(&self, registry: &Registry) -> Result<(), SsiError> {
        let history = registry.history(&self.issuer);
        if history.is_empty() {
            return Err(SsiError::UnknownDid(self.issuer.as_str().to_owned()));
        }
        let doc = history
            .iter()
            .find(|d| d.version == self.issuer_key_version)
            .ok_or(SsiError::BadSignature)?;
        let pk = MssPublicKey::from_bytes(doc.public_key);
        let body = Self::signed_bytes(&self.issuer, self.version, &self.revoked);
        if pk.verify(&body, &self.signature) {
            Ok(())
        } else {
            Err(SsiError::BadSignature)
        }
    }

    /// Whether `cred` is revoked by this list (only meaningful when the
    /// list's issuer matches the credential's).
    ///
    /// # Errors
    ///
    /// [`SsiError::Revoked`] if revoked.
    pub fn check(&self, cred: &VerifiableCredential) -> Result<(), SsiError> {
        if self.issuer == cred.issuer && self.revoked.contains(&cred.id) {
            return Err(SsiError::Revoked);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_sim::SimRng;

    #[test]
    fn revocation_flow() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(55);
        let mut issuer = Wallet::create(&mut rng, "oem", &reg);
        let subject = Wallet::create(&mut rng, "ecu", &reg);

        let good = issuer
            .issue(subject.did().clone(), serde_json::json!({"v": 1}), None)
            .unwrap();
        let bad = issuer
            .issue(subject.did().clone(), serde_json::json!({"v": 2}), None)
            .unwrap();

        let mut revoked = BTreeSet::new();
        revoked.insert(bad.id.clone());
        let rl = RevocationList::create(&mut issuer, 1, revoked).unwrap();
        assert!(rl.verify(&reg).is_ok());
        assert!(rl.check(&good).is_ok());
        assert_eq!(rl.check(&bad).unwrap_err(), SsiError::Revoked);
    }

    #[test]
    fn tampered_list_rejected() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(56);
        let mut issuer = Wallet::create(&mut rng, "oem", &reg);
        let mut rl = RevocationList::create(&mut issuer, 1, BTreeSet::new()).unwrap();
        // An attacker *removes* an entry (or here, adds one) without
        // re-signing.
        rl.revoked.insert("some-credential".into());
        assert_eq!(rl.verify(&reg).unwrap_err(), SsiError::BadSignature);
    }

    #[test]
    fn foreign_issuer_list_does_not_revoke() {
        let reg = Registry::new();
        let mut rng = SimRng::seed(57);
        let mut oem = Wallet::create(&mut rng, "oem", &reg);
        let mut other = Wallet::create(&mut rng, "someone-else", &reg);
        let subject = Wallet::create(&mut rng, "ecu", &reg);
        let cred = oem
            .issue(subject.did().clone(), serde_json::json!({}), None)
            .unwrap();
        let mut revoked = BTreeSet::new();
        revoked.insert(cred.id.clone());
        // someone-else cannot revoke the OEM's credential.
        let rl = RevocationList::create(&mut other, 1, revoked).unwrap();
        assert!(rl.check(&cred).is_ok());
    }
}
