//! Decentralized identifiers and DID documents (paper ref \[30\]).

use autosec_crypto::Sha256;
use serde_json::{json, Value};

/// A decentralized identifier, e.g. `did:vreg:3f9a…`.
///
/// The method is fixed to `vreg` (our in-memory verifiable registry,
/// standing in for `did:web`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Did(String);

impl Did {
    /// Derives a DID from a public key digest (self-certifying).
    pub fn from_public_key(pk_root: &[u8; 32]) -> Self {
        let digest = Sha256::digest(pk_root);
        Did(format!(
            "did:vreg:{}",
            autosec_crypto::util::to_hex(&digest[..16])
        ))
    }

    /// Parses an existing DID string.
    ///
    /// Returns `None` unless the string has the `did:vreg:` prefix.
    pub fn parse(s: &str) -> Option<Self> {
        s.starts_with("did:vreg:").then(|| Did(s.to_owned()))
    }

    /// The full DID string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Did {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A DID document: the public material resolvable for a DID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DidDocument {
    /// The DID this document describes.
    pub id: Did,
    /// Human-readable subject name (e.g. `"brake-ecu"`, `"oem"`).
    pub name: String,
    /// Verification key: the MSS public root.
    pub public_key: [u8; 32],
    /// Document version (bumped on key rotation).
    pub version: u32,
    /// Optional service endpoint (e.g. a revocation list URL analogue).
    pub service: Option<String>,
}

impl DidDocument {
    /// Canonical bytes for signing/verification binding.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"diddoc|");
        out.extend_from_slice(self.id.as_str().as_bytes());
        out.push(b'|');
        out.extend_from_slice(self.name.as_bytes());
        out.push(b'|');
        out.extend_from_slice(&self.public_key);
        out.extend_from_slice(&self.version.to_be_bytes());
        if let Some(s) = &self.service {
            out.extend_from_slice(s.as_bytes());
        }
        out
    }

    /// Whether the DID is actually derived from this document's key
    /// (self-certification check).
    pub fn is_self_certifying(&self) -> bool {
        Did::from_public_key(&self.public_key) == self.id
    }

    /// Explicit JSON serializer (the workbench has no serde derive;
    /// documents convert themselves).
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id.as_str(),
            "name": (&self.name),
            "public_key": autosec_crypto::util::to_hex(&self.public_key),
            "version": self.version,
            "service": (self.service.clone()),
        })
    }

    /// Parses a document previously produced by [`Self::to_json`].
    ///
    /// Returns `None` on any missing field, malformed DID, or
    /// non-32-byte key.
    pub fn from_json(v: &Value) -> Option<Self> {
        let id = Did::parse(v["id"].as_str()?)?;
        let key_hex = v["public_key"].as_str()?;
        let key_bytes = autosec_crypto::util::from_hex(key_hex)?;
        let public_key: [u8; 32] = key_bytes.try_into().ok()?;
        Some(Self {
            id,
            name: v["name"].as_str()?.to_owned(),
            public_key,
            version: u32::try_from(v["version"].as_u64()?).ok()?,
            service: v["service"].as_str().map(str::to_owned),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn did_is_deterministic_per_key() {
        let a = Did::from_public_key(&[1u8; 32]);
        let b = Did::from_public_key(&[1u8; 32]);
        let c = Did::from_public_key(&[2u8; 32]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_str().starts_with("did:vreg:"));
    }

    #[test]
    fn parse_checks_method() {
        assert!(Did::parse("did:vreg:abcd").is_some());
        assert!(Did::parse("did:web:example.com").is_none());
        assert!(Did::parse("not a did").is_none());
    }

    #[test]
    fn self_certification() {
        let pk = [7u8; 32];
        let doc = DidDocument {
            id: Did::from_public_key(&pk),
            name: "x".into(),
            public_key: pk,
            version: 1,
            service: None,
        };
        assert!(doc.is_self_certifying());
        let forged = DidDocument {
            public_key: [8u8; 32],
            ..doc
        };
        assert!(!forged.is_self_certifying());
    }

    #[test]
    fn canonical_bytes_distinguish_fields() {
        let base = DidDocument {
            id: Did::from_public_key(&[1u8; 32]),
            name: "a".into(),
            public_key: [1u8; 32],
            version: 1,
            service: None,
        };
        let v2 = DidDocument {
            version: 2,
            ..base.clone()
        };
        assert_ne!(base.canonical_bytes(), v2.canonical_bytes());
    }

    #[test]
    fn json_round_trip() {
        let doc = DidDocument {
            id: Did::from_public_key(&[3u8; 32]),
            name: "ecu".into(),
            public_key: [3u8; 32],
            version: 1,
            service: Some("revocations".into()),
        };
        let json = serde_json::to_string(&doc.to_json()).unwrap();
        let back = DidDocument::from_json(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(DidDocument::from_json(&json!({})).is_none());
        assert!(DidDocument::from_json(&json!({
            "id": "did:web:nope",
            "name": "x",
            "public_key": "00",
            "version": 1,
            "service": null,
        }))
        .is_none());
    }
}
