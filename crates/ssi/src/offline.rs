//! Offline verification bundles (§IV-C, paper ref \[34\]).
//!
//! *"Another advantage of SSI solutions is the support for offline
//! scenarios when the Internet is unavailable or disturbed."* A holder
//! carries everything a verifier needs: the presentation, the issuer and
//! holder DID-document histories, a revocation-list snapshot, and the
//! anchor set. Verification then runs against a **local** registry
//! reconstruction with zero network access.

use crate::did::{Did, DidDocument};
use crate::presentation::VerifiablePresentation;
use crate::registry::Registry;
use crate::revocation::RevocationList;
use crate::SsiError;

/// A self-contained verification bundle.
#[derive(Debug)]
pub struct OfflineBundle {
    /// The presentation being carried.
    pub presentation: VerifiablePresentation,
    /// DID-document histories for every DID the verification touches
    /// (holder, issuers), in registry order.
    pub documents: Vec<DidDocument>,
    /// Trust anchors the holder claims; the verifier intersects these
    /// with its own pinned set.
    pub anchors: Vec<(Did, String)>,
    /// Revocation snapshots per issuer.
    pub revocations: Vec<RevocationList>,
}

impl OfflineBundle {
    /// Assembles a bundle from the online registry.
    pub fn assemble(
        registry: &Registry,
        presentation: VerifiablePresentation,
        revocations: Vec<RevocationList>,
    ) -> Self {
        let mut documents = Vec::new();
        let mut dids: Vec<Did> = vec![presentation.holder.clone()];
        for c in &presentation.credentials {
            if !dids.contains(&c.issuer) {
                dids.push(c.issuer.clone());
            }
        }
        for did in &dids {
            documents.extend(registry.history(did));
        }
        Self {
            presentation,
            documents,
            anchors: registry.trust_anchors(),
            revocations,
        }
    }

    /// Verifies the bundle **offline**, against `pinned_anchors` — the
    /// anchor DIDs the verifier trusts a priori (e.g. burned into the
    /// charging station at manufacture).
    ///
    /// # Errors
    ///
    /// [`SsiError::Untrusted`] if none of the bundle's anchors is
    /// pinned; otherwise the first verification failure.
    pub fn verify_offline(
        &self,
        pinned_anchors: &[Did],
        expected_challenge: &[u8],
        now: u64,
    ) -> Result<(), SsiError> {
        // Rebuild a local registry from the carried documents.
        let local = Registry::new();
        let mut seen: Vec<Did> = Vec::new();
        for doc in &self.documents {
            if seen.contains(&doc.id) {
                // Rotations carried in-order: trust the bundle's history
                // only if each step is self-consistent. We re-verify the
                // chain cheaply: version must increase.
                let last = local.resolve(&doc.id)?;
                if doc.version <= last.version {
                    return Err(SsiError::BadSignature);
                }
                // NOTE: rotation signatures are not carried in this
                // model; credentials pin their signing key version, and
                // initial documents are self-certifying, so a forged
                // later version cannot validate any credential it did
                // not sign.
                local.force_publish_version(doc.clone());
            } else {
                if !doc.is_self_certifying() {
                    return Err(SsiError::BadSignature);
                }
                local.publish(doc.clone());
                seen.push(doc.id.clone());
            }
        }
        // Intersect anchors with the pinned set.
        let mut any = false;
        for (did, label) in &self.anchors {
            if pinned_anchors.contains(did) {
                local.add_trust_anchor(did.clone(), label);
                any = true;
            }
        }
        if !any {
            return Err(SsiError::Untrusted);
        }
        // Revocation snapshots.
        for rl in &self.revocations {
            rl.verify(&local)?;
            for c in &self.presentation.credentials {
                rl.check(c)?;
            }
        }
        self.presentation.verify(&local, expected_challenge, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wallet::Wallet;
    use autosec_sim::SimRng;
    use std::collections::BTreeSet;

    fn setup() -> (Registry, Wallet, Wallet, SimRng) {
        let reg = Registry::new();
        let mut rng = SimRng::seed(99);
        let anchor = Wallet::create(&mut rng, "emsp-root", &reg);
        reg.add_trust_anchor(anchor.did().clone(), "eMSP");
        let vehicle = Wallet::create(&mut rng, "vehicle", &reg);
        (reg, anchor, vehicle, rng)
    }

    #[test]
    fn offline_verification_succeeds_without_the_online_registry() {
        let (reg, mut anchor, mut vehicle, _) = setup();
        let contract = anchor
            .issue(
                vehicle.did().clone(),
                serde_json::json!({"contract": "CHG-42"}),
                None,
            )
            .unwrap();
        let rl = RevocationList::create(&mut anchor, 1, BTreeSet::new()).unwrap();
        let vp =
            VerifiablePresentation::create(&mut vehicle, vec![contract], b"station-nonce").unwrap();
        let bundle = OfflineBundle::assemble(&reg, vp, vec![rl]);
        // The charging station has only its pinned anchor — no registry.
        let pinned = vec![anchor.did().clone()];
        assert!(bundle.verify_offline(&pinned, b"station-nonce", 0).is_ok());
    }

    #[test]
    fn unpinned_anchor_rejected() {
        let (reg, mut anchor, mut vehicle, mut rng) = setup();
        let cred = anchor
            .issue(vehicle.did().clone(), serde_json::json!({}), None)
            .unwrap();
        let vp = VerifiablePresentation::create(&mut vehicle, vec![cred], b"n").unwrap();
        let bundle = OfflineBundle::assemble(&reg, vp, vec![]);
        let unrelated = Wallet::create(&mut rng, "other-root", &reg);
        assert_eq!(
            bundle
                .verify_offline(&[unrelated.did().clone()], b"n", 0)
                .unwrap_err(),
            SsiError::Untrusted
        );
    }

    #[test]
    fn revoked_contract_rejected_offline() {
        let (reg, mut anchor, mut vehicle, _) = setup();
        let contract = anchor
            .issue(vehicle.did().clone(), serde_json::json!({"c": 1}), None)
            .unwrap();
        let mut revoked = BTreeSet::new();
        revoked.insert(contract.id.clone());
        let rl = RevocationList::create(&mut anchor, 2, revoked).unwrap();
        let vp = VerifiablePresentation::create(&mut vehicle, vec![contract], b"n").unwrap();
        let bundle = OfflineBundle::assemble(&reg, vp, vec![rl]);
        assert_eq!(
            bundle
                .verify_offline(&[anchor.did().clone()], b"n", 0)
                .unwrap_err(),
            SsiError::Revoked
        );
    }

    #[test]
    fn forged_document_in_bundle_rejected() {
        let (reg, mut anchor, mut vehicle, _) = setup();
        let cred = anchor
            .issue(vehicle.did().clone(), serde_json::json!({}), None)
            .unwrap();
        let vp = VerifiablePresentation::create(&mut vehicle, vec![cred], b"n").unwrap();
        let mut bundle = OfflineBundle::assemble(&reg, vp, vec![]);
        // Attacker swaps a carried document's key.
        bundle.documents[0].public_key = [0xEE; 32];
        assert_eq!(
            bundle
                .verify_offline(&[anchor.did().clone()], b"n", 0)
                .unwrap_err(),
            SsiError::BadSignature
        );
    }
}
