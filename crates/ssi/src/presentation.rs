//! Verifiable presentations: holder-bound, challenge-fresh disclosure of
//! credentials.
//!
//! The verifier issues a random challenge; the holder signs
//! `(credential ids, challenge)` with the key of the DID the credentials
//! are *about*. That binding is what stops a stolen credential from
//! being replayed by someone else — the §IV "mutual authentication"
//! building block used by SDV reconfiguration and plug-and-charge.

use autosec_crypto::{MssPublicKey, MssSignature};

use crate::credential::VerifiableCredential;
use crate::did::Did;
use crate::registry::Registry;
use crate::wallet::Wallet;
use crate::SsiError;

/// A presentation of one or more credentials by their subject.
#[derive(Debug, Clone)]
pub struct VerifiablePresentation {
    /// The holder (must equal every credential's subject).
    pub holder: Did,
    /// The presented credentials.
    pub credentials: Vec<VerifiableCredential>,
    /// The verifier's challenge this presentation answers.
    pub challenge: Vec<u8>,
    /// Version of the holder's DID document whose key signed this.
    pub holder_key_version: u32,
    signature: MssSignature,
}

impl VerifiablePresentation {
    fn signed_bytes(holder: &Did, creds: &[VerifiableCredential], challenge: &[u8]) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(b"vp|");
        b.extend_from_slice(holder.as_str().as_bytes());
        for c in creds {
            b.push(b'|');
            b.extend_from_slice(c.id.as_bytes());
        }
        b.push(b'|');
        b.extend_from_slice(challenge);
        b
    }

    /// Creates a presentation: the holder proves possession of the key
    /// behind the credentials' subject DID.
    ///
    /// # Errors
    ///
    /// [`SsiError::KeyExhausted`] if the holder's key is spent.
    ///
    /// # Panics
    ///
    /// Panics if any credential's subject is not the holder — presenting
    /// someone else's credential is a caller bug, not a runtime
    /// condition.
    pub fn create(
        holder: &mut Wallet,
        credentials: Vec<VerifiableCredential>,
        challenge: &[u8],
    ) -> Result<Self, SsiError> {
        for c in &credentials {
            assert_eq!(
                &c.subject,
                holder.did(),
                "presented credential is about a different subject"
            );
        }
        let body = Self::signed_bytes(holder.did(), &credentials, challenge);
        let holder_key_version = holder.doc_version();
        let signature = holder.sign(&body)?;
        Ok(Self {
            holder: holder.did().clone(),
            credentials,
            challenge: challenge.to_vec(),
            holder_key_version,
            signature,
        })
    }

    /// Full verification: challenge match, holder binding, every
    /// credential signature, validity at `now`, and a trust path for
    /// each credential's issuer.
    ///
    /// # Errors
    ///
    /// The first failure encountered, in the order above.
    pub fn verify(
        &self,
        registry: &Registry,
        expected_challenge: &[u8],
        now: u64,
    ) -> Result<(), SsiError> {
        if self.challenge != expected_challenge {
            return Err(SsiError::ChallengeMismatch);
        }
        // Holder binding.
        let history = registry.history(&self.holder);
        let doc = history
            .iter()
            .find(|d| d.version == self.holder_key_version)
            .ok_or_else(|| SsiError::UnknownDid(self.holder.as_str().to_owned()))?;
        let pk = MssPublicKey::from_bytes(doc.public_key);
        let body = Self::signed_bytes(&self.holder, &self.credentials, &self.challenge);
        if !pk.verify(&body, &self.signature) {
            return Err(SsiError::BadSignature);
        }
        for c in &self.credentials {
            if c.subject != self.holder {
                return Err(SsiError::BadSignature);
            }
            c.verify(registry)?;
            c.check_validity(now)?;
            if !registry.trust_path_ok(c) {
                return Err(SsiError::Untrusted);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosec_sim::SimRng;

    fn setup() -> (Registry, Wallet, Wallet, SimRng) {
        let reg = Registry::new();
        let mut rng = SimRng::seed(77);
        let anchor = Wallet::create(&mut rng, "oem-root", &reg);
        reg.add_trust_anchor(anchor.did().clone(), "OEM");
        let holder = Wallet::create(&mut rng, "vehicle", &reg);
        (reg, anchor, holder, rng)
    }

    #[test]
    fn full_flow_verifies() {
        let (reg, mut anchor, mut holder, _) = setup();
        let cred = anchor
            .issue(
                holder.did().clone(),
                serde_json::json!({"vin": "WVW123"}),
                None,
            )
            .unwrap();
        let vp = VerifiablePresentation::create(&mut holder, vec![cred], b"challenge-1").unwrap();
        assert!(vp.verify(&reg, b"challenge-1", 0).is_ok());
    }

    #[test]
    fn wrong_challenge_rejected() {
        let (reg, mut anchor, mut holder, _) = setup();
        let cred = anchor
            .issue(holder.did().clone(), serde_json::json!({}), None)
            .unwrap();
        let vp = VerifiablePresentation::create(&mut holder, vec![cred], b"challenge-1").unwrap();
        assert_eq!(
            vp.verify(&reg, b"challenge-2", 0).unwrap_err(),
            SsiError::ChallengeMismatch
        );
    }

    #[test]
    fn stolen_credential_cannot_be_presented() {
        let (reg, mut anchor, holder, mut rng) = setup();
        let mut thief = Wallet::create(&mut rng, "thief", &reg);
        let cred = anchor
            .issue(holder.did().clone(), serde_json::json!({"vip": true}), None)
            .unwrap();
        // The thief forges a presentation claiming to be the holder but
        // signing with his own key.
        let body =
            VerifiablePresentation::signed_bytes(holder.did(), std::slice::from_ref(&cred), b"c");
        let signature = thief.sign(&body).unwrap();
        let forged = VerifiablePresentation {
            holder: holder.did().clone(),
            credentials: vec![cred],
            challenge: b"c".to_vec(),
            holder_key_version: 1,
            signature,
        };
        assert_eq!(
            forged.verify(&reg, b"c", 0).unwrap_err(),
            SsiError::BadSignature
        );
    }

    #[test]
    fn untrusted_issuer_rejected() {
        let (reg, _, mut holder, mut rng) = setup();
        let mut rando = Wallet::create(&mut rng, "random-signer", &reg);
        let cred = rando
            .issue(
                holder.did().clone(),
                serde_json::json!({"legit": false}),
                None,
            )
            .unwrap();
        let vp = VerifiablePresentation::create(&mut holder, vec![cred], b"c").unwrap();
        assert_eq!(vp.verify(&reg, b"c", 0).unwrap_err(), SsiError::Untrusted);
    }

    #[test]
    fn expired_credential_rejected() {
        let (reg, mut anchor, mut holder, _) = setup();
        let cred = anchor
            .issue_with_validity(
                holder.did().clone(),
                serde_json::json!({}),
                None,
                0,
                Some(10),
            )
            .unwrap();
        let vp = VerifiablePresentation::create(&mut holder, vec![cred], b"c").unwrap();
        assert!(vp.verify(&reg, b"c", 5).is_ok());
        assert_eq!(vp.verify(&reg, b"c", 11).unwrap_err(), SsiError::Expired);
    }

    #[test]
    #[should_panic(expected = "different subject")]
    fn presenting_foreign_credential_panics() {
        let (reg, mut anchor, mut holder, mut rng) = setup();
        let other = Wallet::create(&mut rng, "other", &reg);
        let cred = anchor
            .issue(other.did().clone(), serde_json::json!({}), None)
            .unwrap();
        let _ = VerifiablePresentation::create(&mut holder, vec![cred], b"c");
    }

    #[test]
    fn multi_credential_presentation() {
        let (reg, mut anchor, mut holder, _) = setup();
        let c1 = anchor
            .issue(holder.did().clone(), serde_json::json!({"k": 1}), None)
            .unwrap();
        let c2 = anchor
            .issue(holder.did().clone(), serde_json::json!({"k": 2}), None)
            .unwrap();
        let vp = VerifiablePresentation::create(&mut holder, vec![c1, c2], b"n").unwrap();
        assert!(vp.verify(&reg, b"n", 0).is_ok());
    }
}
