//! Thread-safety of the shared verifiable data registry: vehicle, cloud,
//! and charging-station actors hammer one registry concurrently.

use std::sync::Arc;

use autosec_sim::SimRng;
use autosec_ssi::prelude::*;

#[test]
fn concurrent_publish_resolve_and_verify() {
    let registry = Arc::new(Registry::new());
    let mut rng = SimRng::seed(777);
    let mut anchor = Wallet::create(&mut rng, "anchor", &registry);
    registry.add_trust_anchor(anchor.did().clone(), "root");

    // Pre-issue credentials for 4 holders.
    let mut holders: Vec<Wallet> = (0..4)
        .map(|i| Wallet::create(&mut rng, &format!("holder-{i}"), &registry))
        .collect();
    let creds: Vec<VerifiableCredential> = holders
        .iter()
        .map(|h| {
            anchor
                .issue(h.did().clone(), serde_json::json!({"n": h.name()}), None)
                .expect("issue")
        })
        .collect();

    std::thread::scope(|scope| {
        // Writers: register new DIDs concurrently.
        for t in 0..4u64 {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                let mut rng = SimRng::seed(1000 + t);
                for i in 0..3 {
                    let _ = Wallet::create_with_height(
                        &mut rng,
                        &format!("writer-{t}-{i}"),
                        &registry,
                        2,
                    );
                }
            });
        }
        // Readers: verify the pre-issued credentials concurrently.
        for cred in &creds {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                for _ in 0..50 {
                    cred.verify(&registry).expect("stays valid under writes");
                    assert!(registry.trust_path_ok(cred));
                }
            });
        }
    });

    // 1 anchor + 4 holders + 4*3 writers.
    assert_eq!(registry.did_count(), 1 + 4 + 12);
    // Presentations still work after the storm.
    let vp = VerifiablePresentation::create(&mut holders[0], vec![creds[0].clone()], b"c")
        .expect("create");
    assert!(vp.verify(&registry, b"c", 0).is_ok());
}

#[test]
fn presentation_challenge_prevents_cross_verifier_replay() {
    // A presentation captured at verifier A cannot be replayed at
    // verifier B, who issues its own challenge.
    let registry = Registry::new();
    let mut rng = SimRng::seed(778);
    let mut anchor = Wallet::create(&mut rng, "anchor", &registry);
    registry.add_trust_anchor(anchor.did().clone(), "root");
    let mut holder = Wallet::create(&mut rng, "vehicle", &registry);
    let cred = anchor
        .issue(holder.did().clone(), serde_json::json!({}), None)
        .expect("issue");

    let vp_for_a =
        VerifiablePresentation::create(&mut holder, vec![cred], b"challenge-A").expect("create");
    assert!(vp_for_a.verify(&registry, b"challenge-A", 0).is_ok());
    // Verifier B's challenge differs: replay rejected.
    assert_eq!(
        vp_for_a.verify(&registry, b"challenge-B", 0).unwrap_err(),
        SsiError::ChallengeMismatch
    );
}
