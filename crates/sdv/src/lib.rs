//! # autosec-sdv
//!
//! Software-defined vehicle platform — §IV of the paper (Fig. 7).
//!
//! The SDV shift decouples software from hardware: components can be
//! "replaced, updated, or reconfigured after production". The paper's
//! three trust requirements map to the modules here:
//!
//! - **System integrity for reconfiguration** → [`platform`]: a
//!   zero-trust reconfiguration engine that demands mutual SSI
//!   authentication between software and hardware before placement
//!   (§IV-A), including the failover flow ("if some control unit fails,
//!   software may have to be placed on other components")
//! - **Data security and authentication** → [`update`]: OTA packages
//!   signed by the vendor and checked against the trust registry before
//!   installation
//! - **Interoperable services, multiple trust anchors** → [`charging`]:
//!   the §IV-C plug-and-charge comparison between an ISO-15118-style
//!   hierarchical PKI ([`pki`]) and the SSI flow, including the offline
//!   case
//!
//! [`component`] holds the component/hardware compatibility model
//! underlying all of it.

pub mod charging;
pub mod component;
pub mod faults;
pub mod pki;
pub mod platform;
pub mod update;

/// Errors of the SDV layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdvError {
    /// Hardware lacks a capability the component requires.
    Incompatible(String),
    /// Mutual authentication failed (component or node side).
    AuthFailed(String),
    /// Referenced component/node does not exist.
    NotFound(String),
    /// Node has no spare compute capacity.
    NoCapacity,
    /// Update package rejected (signature, version, or compatibility).
    UpdateRejected(String),
}

impl std::fmt::Display for SdvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdvError::Incompatible(what) => write!(f, "incompatible: {what}"),
            SdvError::AuthFailed(who) => write!(f, "authentication failed: {who}"),
            SdvError::NotFound(what) => write!(f, "not found: {what}"),
            SdvError::NoCapacity => write!(f, "no spare compute capacity"),
            SdvError::UpdateRejected(why) => write!(f, "update rejected: {why}"),
        }
    }
}

impl std::error::Error for SdvError {}
