//! Software components and hardware nodes of the SDV.

/// Automotive safety integrity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Asil {
    /// Quality managed (no safety requirement).
    Qm,
    /// ASIL A (lowest).
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D (highest — steering, braking).
    D,
}

/// A deployable software component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareComponent {
    /// Unique component id (e.g. `"brake-controller"`).
    pub id: String,
    /// Vendor name (its wallet/DID is managed by the platform test
    /// harness).
    pub vendor: String,
    /// Semantic version.
    pub version: (u16, u16, u16),
    /// Hardware capabilities this component requires.
    pub requires: Vec<String>,
    /// Compute units consumed when deployed.
    pub compute_cost: u32,
    /// Safety level the hosting node must support.
    pub asil: Asil,
}

impl SoftwareComponent {
    /// Version as a display string.
    pub fn version_string(&self) -> String {
        format!("{}.{}.{}", self.version.0, self.version.1, self.version.2)
    }
}

/// A hardware node (HPC, zonal controller, or ECU) able to host software.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareNode {
    /// Unique node id (e.g. `"hpc-0"`).
    pub id: String,
    /// Capabilities the node offers (interfaces, accelerators...).
    pub provides: Vec<String>,
    /// Total compute units.
    pub compute_capacity: u32,
    /// Highest ASIL the node is certified for.
    pub max_asil: Asil,
}

/// Why a component cannot run on a node, if it cannot.
pub fn compatibility(component: &SoftwareComponent, node: &HardwareNode) -> Result<(), String> {
    for cap in &component.requires {
        if !node.provides.contains(cap) {
            return Err(format!("node {} lacks capability {cap}", node.id));
        }
    }
    if component.asil > node.max_asil {
        return Err(format!(
            "node {} certified up to {:?} but component needs {:?}",
            node.id, node.max_asil, component.asil
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brake_sw() -> SoftwareComponent {
        SoftwareComponent {
            id: "brake-controller".into(),
            vendor: "tier1".into(),
            version: (2, 1, 0),
            requires: vec!["can-if".into(), "lockstep-core".into()],
            compute_cost: 20,
            asil: Asil::D,
        }
    }

    fn hpc() -> HardwareNode {
        HardwareNode {
            id: "hpc-0".into(),
            provides: vec!["can-if".into(), "lockstep-core".into(), "gpu".into()],
            compute_capacity: 100,
            max_asil: Asil::D,
        }
    }

    #[test]
    fn compatible_pair() {
        assert!(compatibility(&brake_sw(), &hpc()).is_ok());
    }

    #[test]
    fn missing_capability_detected() {
        let mut node = hpc();
        node.provides.retain(|c| c != "lockstep-core");
        let err = compatibility(&brake_sw(), &node).unwrap_err();
        assert!(err.contains("lockstep-core"));
    }

    #[test]
    fn asil_ordering_enforced() {
        let mut node = hpc();
        node.max_asil = Asil::B;
        let err = compatibility(&brake_sw(), &node).unwrap_err();
        assert!(err.contains("certified"));
        // A QM component runs anywhere.
        let mut sw = brake_sw();
        sw.asil = Asil::Qm;
        sw.requires.clear();
        assert!(compatibility(&sw, &node).is_ok());
    }

    #[test]
    fn asil_order_is_total() {
        assert!(Asil::Qm < Asil::A);
        assert!(Asil::A < Asil::B);
        assert!(Asil::B < Asil::C);
        assert!(Asil::C < Asil::D);
    }

    #[test]
    fn version_string_format() {
        assert_eq!(brake_sw().version_string(), "2.1.0");
    }
}
