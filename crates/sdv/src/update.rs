//! Signed over-the-air updates (§IV-A: "in the case of software updates
//! or hardware replacements, authentication is essential").

use autosec_crypto::Sha256;
use autosec_ssi::prelude::*;

use crate::component::SoftwareComponent;
use crate::SdvError;

/// A signed OTA update package.
#[derive(Debug)]
pub struct UpdatePackage {
    /// Target component id.
    pub component_id: String,
    /// New version.
    pub version: (u16, u16, u16),
    /// SHA-256 of the update image.
    pub image_digest: [u8; 32],
    /// Vendor credential binding the digest to the release.
    pub release_credential: VerifiableCredential,
    /// The update image itself (payload bytes).
    pub image: Vec<u8>,
}

impl UpdatePackage {
    /// Builds and signs a package. The vendor issues a release
    /// credential whose claims commit to component, version and digest.
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn build(
        vendor: &mut Wallet,
        target_did: Did,
        component_id: &str,
        version: (u16, u16, u16),
        image: Vec<u8>,
    ) -> Result<Self, SdvError> {
        let image_digest = Sha256::digest(&image);
        let cred = vendor
            .issue(
                target_did,
                serde_json::json!({
                    "type": "ota-release",
                    "component": component_id,
                    "version": format!("{}.{}.{}", version.0, version.1, version.2),
                    "digest": autosec_crypto::util::to_hex(&image_digest),
                }),
                None,
            )
            .map_err(|e| SdvError::UpdateRejected(e.to_string()))?;
        Ok(Self {
            component_id: component_id.to_owned(),
            version,
            image_digest,
            release_credential: cred,
            image,
        })
    }
}

/// The vehicle-side update manager.
#[derive(Debug)]
pub struct UpdateManager;

impl UpdateManager {
    /// Verifies and applies an update to `component`.
    ///
    /// Checks, in order: credential signature, trust path to an anchor,
    /// image digest integrity, claims/package consistency, and version
    /// monotonicity (no downgrade).
    ///
    /// # Errors
    ///
    /// [`SdvError::UpdateRejected`] naming the failed check.
    pub fn apply(
        registry: &Registry,
        component: &mut SoftwareComponent,
        pkg: &UpdatePackage,
    ) -> Result<(), SdvError> {
        pkg.release_credential
            .verify(registry)
            .map_err(|e| SdvError::UpdateRejected(format!("signature: {e}")))?;
        if !registry.trust_path_ok(&pkg.release_credential) {
            return Err(SdvError::UpdateRejected("untrusted vendor".into()));
        }
        let digest = Sha256::digest(&pkg.image);
        if digest != pkg.image_digest {
            return Err(SdvError::UpdateRejected("image digest mismatch".into()));
        }
        let claims = &pkg.release_credential.claims;
        let claimed_digest = claims["digest"].as_str().unwrap_or_default();
        if claimed_digest != autosec_crypto::util::to_hex(&digest) {
            return Err(SdvError::UpdateRejected(
                "credential does not commit to this image".into(),
            ));
        }
        if claims["component"].as_str() != Some(pkg.component_id.as_str())
            || pkg.component_id != component.id
        {
            return Err(SdvError::UpdateRejected("component mismatch".into()));
        }
        if pkg.version <= component.version {
            return Err(SdvError::UpdateRejected(format!(
                "downgrade {} -> {}.{}.{}",
                component.version_string(),
                pkg.version.0,
                pkg.version.1,
                pkg.version.2
            )));
        }
        component.version = pkg.version;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Asil;
    use autosec_sim::SimRng;

    fn setup() -> (Registry, Wallet, Wallet, SoftwareComponent, SimRng) {
        let reg = Registry::new();
        let mut rng = SimRng::seed(500);
        let vendor = Wallet::create(&mut rng, "tier1", &reg);
        reg.add_trust_anchor(vendor.did().clone(), "vendor-root");
        let target = Wallet::create(&mut rng, "adas-stack", &reg);
        let comp = SoftwareComponent {
            id: "adas-stack".into(),
            vendor: "tier1".into(),
            version: (1, 0, 0),
            requires: vec![],
            compute_cost: 10,
            asil: Asil::B,
        };
        (reg, vendor, target, comp, rng)
    }

    #[test]
    fn valid_update_applies() {
        let (reg, mut vendor, target, mut comp, _) = setup();
        let pkg = UpdatePackage::build(
            &mut vendor,
            target.did().clone(),
            "adas-stack",
            (1, 1, 0),
            b"new firmware image".to_vec(),
        )
        .unwrap();
        UpdateManager::apply(&reg, &mut comp, &pkg).unwrap();
        assert_eq!(comp.version, (1, 1, 0));
    }

    #[test]
    fn tampered_image_rejected() {
        let (reg, mut vendor, target, mut comp, _) = setup();
        let mut pkg = UpdatePackage::build(
            &mut vendor,
            target.did().clone(),
            "adas-stack",
            (1, 1, 0),
            b"new firmware image".to_vec(),
        )
        .unwrap();
        pkg.image = b"malicious image!!!".to_vec();
        let err = UpdateManager::apply(&reg, &mut comp, &pkg).unwrap_err();
        assert!(err.to_string().contains("digest"), "{err}");
        assert_eq!(comp.version, (1, 0, 0));
    }

    #[test]
    fn untrusted_vendor_rejected() {
        let (reg, _, target, mut comp, mut rng) = setup();
        let mut rogue = Wallet::create(&mut rng, "rogue", &reg);
        let pkg = UpdatePackage::build(
            &mut rogue,
            target.did().clone(),
            "adas-stack",
            (1, 1, 0),
            b"evil".to_vec(),
        )
        .unwrap();
        let err = UpdateManager::apply(&reg, &mut comp, &pkg).unwrap_err();
        assert!(err.to_string().contains("untrusted"), "{err}");
    }

    #[test]
    fn downgrade_rejected() {
        let (reg, mut vendor, target, mut comp, _) = setup();
        comp.version = (2, 0, 0);
        let pkg = UpdatePackage::build(
            &mut vendor,
            target.did().clone(),
            "adas-stack",
            (1, 9, 9),
            b"old image".to_vec(),
        )
        .unwrap();
        let err = UpdateManager::apply(&reg, &mut comp, &pkg).unwrap_err();
        assert!(err.to_string().contains("downgrade"), "{err}");
    }

    #[test]
    fn cross_component_replay_rejected() {
        let (reg, mut vendor, target, _, _) = setup();
        let mut other = SoftwareComponent {
            id: "brake-controller".into(),
            vendor: "tier1".into(),
            version: (1, 0, 0),
            requires: vec![],
            compute_cost: 5,
            asil: Asil::D,
        };
        let pkg = UpdatePackage::build(
            &mut vendor,
            target.did().clone(),
            "adas-stack",
            (1, 1, 0),
            b"image".to_vec(),
        )
        .unwrap();
        // Applying an adas-stack package to the brake controller fails.
        let err = UpdateManager::apply(&reg, &mut other, &pkg).unwrap_err();
        assert!(err.to_string().contains("component mismatch"), "{err}");
    }
}
