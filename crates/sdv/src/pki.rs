//! A minimal hierarchical X.509-style PKI — the ISO-15118 baseline the
//! §IV-C comparison measures SSI against.
//!
//! Root CA → intermediate CA(s) → end-entity certificates, with chain
//! verification. Signatures use the same hash-based scheme as the SSI
//! side so the comparison isolates *architecture* (hierarchy vs
//! registry + anchors), not primitive speed.

use autosec_crypto::{MssKeyPair, MssPublicKey, MssSignature};
use autosec_sim::SimRng;

use crate::SdvError;

/// A certificate: subject name + key, signed by the issuer.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Subject name.
    pub subject: String,
    /// Issuer name.
    pub issuer: String,
    /// Subject public key root.
    pub public_key: [u8; 32],
    /// Whether the subject may issue further certificates.
    pub is_ca: bool,
    signature: MssSignature,
}

impl Certificate {
    fn tbs_bytes(subject: &str, issuer: &str, pk: &[u8; 32], is_ca: bool) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(b"cert|");
        b.extend_from_slice(subject.as_bytes());
        b.push(b'|');
        b.extend_from_slice(issuer.as_bytes());
        b.push(b'|');
        b.extend_from_slice(pk);
        b.push(u8::from(is_ca));
        b
    }
}

/// A certificate authority (root or intermediate).
pub struct CertificateAuthority {
    name: String,
    keypair: MssKeyPair,
    /// The CA's own certificate (self-signed for roots).
    pub certificate: Certificate,
}

impl std::fmt::Debug for CertificateAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertificateAuthority")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl CertificateAuthority {
    /// Creates a self-signed root CA.
    pub fn root(rng: &mut SimRng, name: &str) -> Self {
        let mut keypair = MssKeyPair::generate(rng, 6);
        let pk = *keypair.public_key().as_bytes();
        let tbs = Certificate::tbs_bytes(name, name, &pk, true);
        let signature = keypair.sign(&tbs).expect("fresh key");
        Self {
            name: name.to_owned(),
            keypair,
            certificate: Certificate {
                subject: name.to_owned(),
                issuer: name.to_owned(),
                public_key: pk,
                is_ca: true,
                signature,
            },
        }
    }

    /// Issues a subordinate CA.
    ///
    /// # Errors
    ///
    /// [`SdvError::UpdateRejected`] if the CA key is exhausted (reused
    /// error type: rekey required).
    pub fn issue_sub_ca(&mut self, rng: &mut SimRng, name: &str) -> Result<Self, SdvError> {
        let keypair = MssKeyPair::generate(rng, 6);
        let pk = *keypair.public_key().as_bytes();
        let tbs = Certificate::tbs_bytes(name, &self.name, &pk, true);
        let signature = self
            .keypair
            .sign(&tbs)
            .map_err(|e| SdvError::UpdateRejected(e.to_string()))?;
        let _ = keypair.public_key();
        Ok(Self {
            name: name.to_owned(),
            keypair,
            certificate: Certificate {
                subject: name.to_owned(),
                issuer: self.name.clone(),
                public_key: pk,
                is_ca: true,
                signature,
            },
        })
    }

    /// Issues an end-entity certificate for `subject` with `public_key`.
    ///
    /// # Errors
    ///
    /// [`SdvError::UpdateRejected`] if the CA key is exhausted.
    pub fn issue_leaf(
        &mut self,
        subject: &str,
        public_key: [u8; 32],
    ) -> Result<Certificate, SdvError> {
        let tbs = Certificate::tbs_bytes(subject, &self.name, &public_key, false);
        let signature = self
            .keypair
            .sign(&tbs)
            .map_err(|e| SdvError::UpdateRejected(e.to_string()))?;
        Ok(Certificate {
            subject: subject.to_owned(),
            issuer: self.name.clone(),
            public_key,
            is_ca: false,
            signature,
        })
    }
}

/// Verifies `chain` (leaf first, root last) against a pinned root
/// certificate. Returns the number of signature verifications performed.
///
/// # Errors
///
/// [`SdvError::AuthFailed`] naming the broken link.
pub fn verify_chain(chain: &[Certificate], pinned_root: &Certificate) -> Result<usize, SdvError> {
    if chain.is_empty() {
        return Err(SdvError::AuthFailed("empty chain".into()));
    }
    let mut verifications = 0usize;
    for i in 0..chain.len() {
        let cert = &chain[i];
        let issuer_cert = if i + 1 < chain.len() {
            &chain[i + 1]
        } else {
            pinned_root
        };
        if cert.issuer != issuer_cert.subject {
            return Err(SdvError::AuthFailed(format!(
                "issuer mismatch at {}",
                cert.subject
            )));
        }
        if i > 0 && !cert.is_ca {
            return Err(SdvError::AuthFailed(format!(
                "non-CA {} used as issuer",
                cert.subject
            )));
        }
        let pk = MssPublicKey::from_bytes(issuer_cert.public_key);
        let tbs = Certificate::tbs_bytes(&cert.subject, &cert.issuer, &cert.public_key, cert.is_ca);
        verifications += 1;
        if !pk.verify(&tbs, &cert.signature) {
            return Err(SdvError::AuthFailed(format!(
                "bad signature on {}",
                cert.subject
            )));
        }
    }
    // Root self-check.
    let pk = MssPublicKey::from_bytes(pinned_root.public_key);
    let tbs = Certificate::tbs_bytes(
        &pinned_root.subject,
        &pinned_root.issuer,
        &pinned_root.public_key,
        pinned_root.is_ca,
    );
    verifications += 1;
    if !pk.verify(&tbs, &pinned_root.signature) {
        return Err(SdvError::AuthFailed("bad root self-signature".into()));
    }
    Ok(verifications)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed(15118)
    }

    #[test]
    fn three_level_chain_verifies() {
        let mut rng = rng();
        let mut root = CertificateAuthority::root(&mut rng, "v2g-root");
        let mut cpo = root.issue_sub_ca(&mut rng, "cpo-ca").unwrap();
        let station_key = MssKeyPair::generate(&mut rng, 2);
        let leaf = cpo
            .issue_leaf("station-017", *station_key.public_key().as_bytes())
            .unwrap();
        let chain = vec![leaf, cpo.certificate.clone()];
        let verifications = verify_chain(&chain, &root.certificate).unwrap();
        assert_eq!(verifications, 3); // leaf, sub-CA, root
    }

    #[test]
    fn wrong_issuer_rejected() {
        let mut rng = rng();
        let mut root_a = CertificateAuthority::root(&mut rng, "root-a");
        let root_b = CertificateAuthority::root(&mut rng, "root-b");
        let key = MssKeyPair::generate(&mut rng, 2);
        let leaf = root_a
            .issue_leaf("leaf", *key.public_key().as_bytes())
            .unwrap();
        let err = verify_chain(&[leaf], &root_b.certificate).unwrap_err();
        assert!(err.to_string().contains("issuer mismatch"), "{err}");
    }

    #[test]
    fn forged_leaf_rejected() {
        let mut rng = rng();
        let mut root = CertificateAuthority::root(&mut rng, "root");
        let key = MssKeyPair::generate(&mut rng, 2);
        let mut leaf = root
            .issue_leaf("station", *key.public_key().as_bytes())
            .unwrap();
        leaf.public_key = [0xAA; 32]; // swap key, keep signature
        let err = verify_chain(&[leaf], &root.certificate).unwrap_err();
        assert!(err.to_string().contains("bad signature"), "{err}");
    }

    #[test]
    fn leaf_cannot_act_as_ca() {
        let mut rng = rng();
        let mut root = CertificateAuthority::root(&mut rng, "root");
        let mut k1 = MssKeyPair::generate(&mut rng, 2);
        let leaf1 = root
            .issue_leaf("station", *k1.public_key().as_bytes())
            .unwrap();
        // The leaf "issues" another cert.
        let k2 = MssKeyPair::generate(&mut rng, 2);
        let tbs = Certificate::tbs_bytes("evil", "station", k2.public_key().as_bytes(), false);
        let forged = Certificate {
            subject: "evil".into(),
            issuer: "station".into(),
            public_key: *k2.public_key().as_bytes(),
            is_ca: false,
            signature: k1.sign(&tbs).unwrap(),
        };
        let err = verify_chain(&[forged, leaf1], &root.certificate).unwrap_err();
        assert!(err.to_string().contains("non-CA"), "{err}");
    }

    #[test]
    fn empty_chain_rejected() {
        let mut rng = rng();
        let root = CertificateAuthority::root(&mut rng, "root");
        assert!(verify_chain(&[], &root.certificate).is_err());
    }
}
