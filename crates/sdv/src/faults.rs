//! Software-platform fault-injection adapter for `autosec-faults`.
//!
//! [`PlatformFaultTarget`] builds a small zero-trust SDV platform
//! (three nodes, four placed components) and applies compute-node
//! crashes, restart-with-failover, and update-rollback pushes:
//!
//! - [`FaultEffect::CrashNode`] — the node dies and nothing re-places
//!   its components; health is the fraction of placements that survive.
//! - [`FaultEffect::RestartNode`] — the node dies and
//!   [`SdvPlatform::fail_node`] re-places its components through the
//!   full mutual-authentication ceremony; only stranded components cost
//!   health.
//! - [`FaultEffect::RollbackUpdate`] — a signed-but-stale (downgrade)
//!   OTA package is pushed; a defended platform's [`UpdateManager`]
//!   rejects it, an undefended one installs the stale image.

use autosec_sim::inject::{FaultEffect, FaultTarget, InjectionRecord};
use autosec_sim::{ArchLayer, SimRng};
use autosec_ssi::prelude::*;

use crate::component::{Asil, HardwareNode, SoftwareComponent};
use crate::platform::SdvPlatform;
use crate::update::{UpdateManager, UpdatePackage};

const NODES: usize = 3;
const COMPONENTS: usize = 4;

/// A small SDV platform under node-crash / restart / rollback faults.
#[derive(Debug, Clone, Default)]
pub struct PlatformFaultTarget;

fn component(i: usize) -> SoftwareComponent {
    SoftwareComponent {
        id: format!("svc-{i}"),
        vendor: "tier1".into(),
        version: (1, 2, 0),
        requires: vec!["can-if".into()],
        compute_cost: 20,
        asil: Asil::B,
    }
}

fn hw_node(i: usize) -> HardwareNode {
    HardwareNode {
        id: format!("hpc-{i}"),
        provides: vec!["can-if".into()],
        compute_capacity: 100,
        max_asil: Asil::D,
    }
}

/// Builds the reference platform with components placed round-robin on
/// the first two nodes (the third is failover headroom).
fn build_platform(rng: &mut SimRng) -> SdvPlatform {
    let (mut platform, mut oem) = SdvPlatform::new(rng);
    for i in 0..NODES {
        platform
            .register_node(rng, hw_node(i), &mut oem)
            .expect("static node registers");
    }
    for i in 0..COMPONENTS {
        platform
            .register_component(rng, component(i), &mut oem)
            .expect("static component registers");
        platform
            .place(&format!("svc-{i}"), &format!("hpc-{}", i % 2))
            .expect("initial placement fits");
    }
    platform
}

/// Applies a downgrade OTA push; returns (health multiplier, rejected).
fn rollback_round(defended: bool, rng: &mut SimRng) -> (f64, bool) {
    let registry = Registry::new();
    let mut vendor = Wallet::create(rng, "tier1", &registry);
    registry.add_trust_anchor(vendor.did().clone(), "vendor-root");
    let target = Wallet::create(rng, "svc-0", &registry);
    let mut comp = component(0);
    let pkg = UpdatePackage::build(
        &mut vendor,
        target.did().clone(),
        "svc-0",
        (1, 0, 0), // downgrade below the running 1.2.0
        b"stale image".to_vec(),
    )
    .expect("vendor signs the stale package");
    if defended {
        let rejected = UpdateManager::apply(&registry, &mut comp, &pkg).is_err();
        (1.0, rejected)
    } else {
        // Undefended manager skips version monotonicity: the stale,
        // vulnerable image is now running.
        comp.version = pkg.version;
        (0.5, false)
    }
}

impl FaultTarget for PlatformFaultTarget {
    fn layer(&self) -> ArchLayer {
        ArchLayer::SoftwarePlatform
    }

    fn name(&self) -> &'static str {
        "sdv-platform"
    }

    fn apply(
        &mut self,
        effects: &[FaultEffect],
        defended: bool,
        rng: &mut SimRng,
    ) -> InjectionRecord {
        let active: Vec<&FaultEffect> = effects
            .iter()
            .filter(|e| e.layer() == ArchLayer::SoftwarePlatform && !e.is_noop())
            .collect();
        if active.is_empty() {
            return InjectionRecord::clean(self.layer(), self.name());
        }

        let mut platform = build_platform(rng);
        let mut health = 1.0f64;
        let mut detected = false;
        let mut notes = Vec::new();
        for e in active {
            match *e {
                FaultEffect::CrashNode { node } => {
                    let name = format!("hpc-{}", node % NODES);
                    let lost = platform
                        .placements()
                        .iter()
                        .filter(|p| p.node == name)
                        .count();
                    health *= 1.0 - lost as f64 / COMPONENTS as f64;
                    detected |= defended;
                    notes.push(format!("{name} crashed, {lost} components down"));
                }
                FaultEffect::RestartNode { node } => {
                    let name = format!("hpc-{}", node % NODES);
                    let stranded = platform.fail_node(&name).map_or(0, |s| s.len());
                    health *= 1.0 - stranded as f64 / COMPONENTS as f64;
                    detected |= defended;
                    notes.push(format!("{name} restarted, {stranded} stranded"));
                }
                FaultEffect::RollbackUpdate => {
                    let (mult, rejected) = rollback_round(defended, rng);
                    health *= mult;
                    detected |= rejected;
                    notes.push(if rejected {
                        "downgrade rejected".into()
                    } else {
                        "stale image installed".into()
                    });
                }
                _ => {}
            }
        }
        InjectionRecord {
            layer: self.layer(),
            target: self.name(),
            applied: true,
            health,
            detected,
            detail: notes.join("; "),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(effects: &[FaultEffect], defended: bool) -> InjectionRecord {
        let mut t = PlatformFaultTarget;
        let mut rng = SimRng::seed(2025).fork("sdv-fault");
        t.apply(effects, defended, &mut rng)
    }

    #[test]
    fn no_effects_is_clean() {
        let rec = apply(&[], true);
        assert_eq!(
            rec,
            InjectionRecord::clean(ArchLayer::SoftwarePlatform, "sdv-platform")
        );
    }

    #[test]
    fn crash_without_failover_loses_components() {
        let rec = apply(&[FaultEffect::CrashNode { node: 0 }], true);
        assert_eq!(rec.health, 0.5, "hpc-0 hosted 2 of 4 components");
        assert!(rec.detected);
    }

    #[test]
    fn restart_failover_recovers_everything() {
        // hpc-2 is empty headroom: fail_node re-places both components.
        let rec = apply(&[FaultEffect::RestartNode { node: 0 }], true);
        assert_eq!(rec.health, 1.0, "{}", rec.detail);
        assert!(rec.detected);
    }

    #[test]
    fn rollback_rejected_only_when_defended() {
        let def = apply(&[FaultEffect::RollbackUpdate], true);
        assert_eq!(def.health, 1.0);
        assert!(def.detected);
        let undef = apply(&[FaultEffect::RollbackUpdate], false);
        assert_eq!(undef.health, 0.5);
        assert!(!undef.detected);
    }

    #[test]
    fn deterministic_per_substream() {
        let a = apply(&[FaultEffect::RestartNode { node: 1 }], true);
        let b = apply(&[FaultEffect::RestartNode { node: 1 }], true);
        assert_eq!(a, b);
    }
}
