//! Distributed charging services (§IV-C): plug-and-charge with an
//! ISO-15118-style hierarchical PKI versus SSI (paper refs \[32\], \[33\]).
//!
//! Both flows are *executed* against the real PKI ([`crate::pki`]) and
//! SSI (`autosec-ssi`) machinery; the [`FlowReport`] captures what the
//! paper argues about — message counts, verification work, how many
//! trust roots each party must manage, and offline capability.

use autosec_crypto::MssKeyPair;
use autosec_sim::SimRng;
use autosec_ssi::prelude::*;

use crate::pki::{verify_chain, CertificateAuthority};
use crate::SdvError;

/// Measured properties of one charging-authorization flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowReport {
    /// Protocol messages exchanged between vehicle and station.
    pub messages: usize,
    /// Signature verifications performed (both sides).
    pub signature_verifications: usize,
    /// Distinct root certificates / anchors the station must manage.
    pub station_trust_roots: usize,
    /// Whether the flow completes with no online lookup.
    pub supports_offline: bool,
    /// Whether authorization succeeded.
    pub authorized: bool,
}

/// Runs an ISO-15118-style plug-and-charge authorization.
///
/// Hierarchy: V2G root → CPO sub-CA → charging-station certificate, and
/// V2G root → eMSP sub-CA → contract certificate in the vehicle. The
/// paper's observation: this builds "a complex public key
/// infrastructure" — with `n_emsp_roots` mobility providers the station
/// must track that many roots (or rely on one global root, creating the
/// single-anchor governance problem SSI avoids).
pub fn iso15118_flow(rng: &mut SimRng, n_emsp_roots: usize) -> Result<FlowReport, SdvError> {
    // Infrastructure setup.
    let mut v2g_root = CertificateAuthority::root(rng, "v2g-root");
    let mut cpo = v2g_root.issue_sub_ca(rng, "cpo-ca")?;
    let mut emsp = v2g_root.issue_sub_ca(rng, "emsp-ca")?;

    let station_key = MssKeyPair::generate(rng, 2);
    let station_cert = cpo.issue_leaf("station-017", *station_key.public_key().as_bytes())?;
    let contract_key = MssKeyPair::generate(rng, 2);
    let contract_cert = emsp.issue_leaf("contract-CHG42", *contract_key.public_key().as_bytes())?;

    // Session: the vehicle verifies the station chain, the station
    // verifies the contract chain.
    let mut verifications = 0;
    verifications += verify_chain(
        &[station_cert, cpo.certificate.clone()],
        &v2g_root.certificate,
    )?;
    verifications += verify_chain(
        &[contract_cert, emsp.certificate.clone()],
        &v2g_root.certificate,
    )?;

    Ok(FlowReport {
        // ISO 15118-2 AC session setup: supportedAppProtocol,
        // SessionSetup, ServiceDiscovery, PaymentServiceSelection,
        // CertificateInstallation/PaymentDetails, Authorize (+responses).
        messages: 12,
        signature_verifications: verifications,
        station_trust_roots: n_emsp_roots.max(1),
        supports_offline: false, // OCSP / contract validation is online
        authorized: true,
    })
}

/// Runs the SSI plug-and-charge flow (paper ref \[32\]): the vehicle
/// presents a contract credential; the station verifies it offline
/// against its pinned anchors.
pub fn ssi_flow(rng: &mut SimRng, offline: bool) -> Result<FlowReport, SdvError> {
    let registry = Registry::new();
    let mut emsp = Wallet::create(rng, "emsp", &registry);
    registry.add_trust_anchor(emsp.did().clone(), "eMSP root");
    let mut vehicle = Wallet::create(rng, "vehicle", &registry);

    let contract = emsp
        .issue(
            vehicle.did().clone(),
            serde_json::json!({"type": "charging-contract", "tariff": "basic"}),
            None,
        )
        .map_err(|e| SdvError::AuthFailed(e.to_string()))?;

    // Station challenges; vehicle presents.
    let challenge = b"station-nonce-1";
    let vp = VerifiablePresentation::create(&mut vehicle, vec![contract], challenge)
        .map_err(|e| SdvError::AuthFailed(e.to_string()))?;

    let authorized = if offline {
        let bundle = OfflineBundle::assemble(&registry, vp, vec![]);
        bundle
            .verify_offline(&[emsp.did().clone()], challenge, 0)
            .is_ok()
    } else {
        vp.verify(&registry, challenge, 0).is_ok()
    };

    Ok(FlowReport {
        // Challenge, presentation, result.
        messages: 3,
        // Presentation signature + credential signature.
        signature_verifications: 2,
        // One *registry*; anchors are roles in it, not per-eMSP root
        // stores at the station.
        station_trust_roots: 1,
        supports_offline: true,
        authorized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso15118_authorizes() {
        let mut rng = SimRng::seed(1);
        let r = iso15118_flow(&mut rng, 5).unwrap();
        assert!(r.authorized);
        assert!(!r.supports_offline);
        assert_eq!(r.station_trust_roots, 5);
        assert!(r.signature_verifications >= 6);
    }

    #[test]
    fn ssi_authorizes_online_and_offline() {
        let mut rng = SimRng::seed(2);
        let online = ssi_flow(&mut rng, false).unwrap();
        assert!(online.authorized);
        let offline = ssi_flow(&mut rng, true).unwrap();
        assert!(offline.authorized);
        assert!(offline.supports_offline);
    }

    #[test]
    fn ssi_needs_fewer_messages_and_verifications() {
        let mut rng = SimRng::seed(3);
        let pki = iso15118_flow(&mut rng, 3).unwrap();
        let ssi = ssi_flow(&mut rng, false).unwrap();
        assert!(ssi.messages < pki.messages);
        assert!(ssi.signature_verifications < pki.signature_verifications);
        assert!(ssi.station_trust_roots <= pki.station_trust_roots);
    }

    #[test]
    fn trust_roots_scale_with_emsp_count_only_for_pki() {
        let mut rng = SimRng::seed(4);
        let few = iso15118_flow(&mut rng, 2).unwrap();
        let many = iso15118_flow(&mut rng, 20).unwrap();
        assert!(many.station_trust_roots > few.station_trust_roots);
        let s1 = ssi_flow(&mut rng, false).unwrap();
        assert_eq!(s1.station_trust_roots, 1);
    }
}
