//! The zero-trust SDV reconfiguration engine (§IV-A, paper ref \[29\]).
//!
//! Placement of a software component onto a hardware node requires
//! **mutual authentication**: the component presents its vendor-issued
//! credential; the node presents its platform-integration credential.
//! Both must chain to trust anchors in the shared registry. Then (and
//! only then) compatibility and capacity are committed.
//!
//! The failover flow the paper describes — "if some control unit fails,
//! software may have to be placed on other components" — is
//! [`SdvPlatform::fail_node`], which re-places every hosted component
//! with the full authentication ceremony.

use std::collections::HashMap;

use autosec_sim::SimRng;
use autosec_ssi::prelude::*;

use crate::component::{compatibility, HardwareNode, SoftwareComponent};
use crate::SdvError;

/// A placement decision record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Component id.
    pub component: String,
    /// Hosting node id.
    pub node: String,
}

/// The vehicle's software/hardware platform with its trust fabric.
pub struct SdvPlatform {
    registry: Registry,
    /// Wallet per component (held by the component's vendor stack).
    component_wallets: HashMap<String, Wallet>,
    /// Wallet per node.
    node_wallets: HashMap<String, Wallet>,
    /// Vendor credentials per component.
    component_credentials: HashMap<String, VerifiableCredential>,
    /// Platform credentials per node.
    node_credentials: HashMap<String, VerifiableCredential>,
    components: HashMap<String, SoftwareComponent>,
    nodes: HashMap<String, HardwareNode>,
    placements: Vec<Placement>,
    used_capacity: HashMap<String, u32>,
    /// Count of signature verifications performed (for E8 accounting).
    pub auth_operations: usize,
}

impl std::fmt::Debug for SdvPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SdvPlatform")
            .field("components", &self.components.len())
            .field("nodes", &self.nodes.len())
            .field("placements", &self.placements.len())
            .finish_non_exhaustive()
    }
}

impl SdvPlatform {
    /// Creates a platform whose trust registry has one OEM anchor.
    /// Returns the platform and the OEM wallet (the integrator who signs
    /// node and vendor credentials).
    pub fn new(rng: &mut SimRng) -> (Self, Wallet) {
        let registry = Registry::new();
        let oem = Wallet::create(rng, "oem-integrator", &registry);
        registry.add_trust_anchor(oem.did().clone(), "OEM");
        (
            Self {
                registry,
                component_wallets: HashMap::new(),
                node_wallets: HashMap::new(),
                component_credentials: HashMap::new(),
                node_credentials: HashMap::new(),
                components: HashMap::new(),
                nodes: HashMap::new(),
                placements: Vec::new(),
                used_capacity: HashMap::new(),
                auth_operations: 0,
            },
            oem,
        )
    }

    /// The shared trust registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Registers a hardware node, credentialed by `issuer` (normally the
    /// OEM anchor).
    ///
    /// # Errors
    ///
    /// Propagates wallet/credential failures.
    pub fn register_node(
        &mut self,
        rng: &mut SimRng,
        node: HardwareNode,
        issuer: &mut Wallet,
    ) -> Result<(), SdvError> {
        let wallet = Wallet::create(rng, &node.id, &self.registry);
        let cred = issuer
            .issue(
                wallet.did().clone(),
                serde_json::json!({"type": "platform-node", "id": (&node.id)}),
                None,
            )
            .map_err(|e| SdvError::AuthFailed(e.to_string()))?;
        self.node_credentials.insert(node.id.clone(), cred);
        self.node_wallets.insert(node.id.clone(), wallet);
        self.used_capacity.insert(node.id.clone(), 0);
        self.nodes.insert(node.id.clone(), node);
        Ok(())
    }

    /// Registers a software component, credentialed by `vendor_issuer`.
    ///
    /// # Errors
    ///
    /// Propagates wallet/credential failures.
    pub fn register_component(
        &mut self,
        rng: &mut SimRng,
        component: SoftwareComponent,
        vendor_issuer: &mut Wallet,
    ) -> Result<(), SdvError> {
        let wallet = Wallet::create(rng, &component.id, &self.registry);
        let cred = vendor_issuer
            .issue(
                wallet.did().clone(),
                serde_json::json!({
                    "type": "software-release",
                    "id": (&component.id),
                    "version": component.version_string(),
                }),
                None,
            )
            .map_err(|e| SdvError::AuthFailed(e.to_string()))?;
        self.component_credentials
            .insert(component.id.clone(), cred);
        self.component_wallets.insert(component.id.clone(), wallet);
        self.components.insert(component.id.clone(), component);
        Ok(())
    }

    /// Current placements.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Node hosting `component`, if deployed.
    pub fn host_of(&self, component: &str) -> Option<&str> {
        self.placements
            .iter()
            .find(|p| p.component == component)
            .map(|p| p.node.as_str())
    }

    /// Mutual authentication between a component and a node: each side
    /// verifies the other's presentation against the registry and trust
    /// anchors.
    fn mutual_auth(&mut self, component: &str, node: &str) -> Result<(), SdvError> {
        let comp_cred = self
            .component_credentials
            .get(component)
            .ok_or_else(|| SdvError::NotFound(format!("component credential {component}")))?
            .clone();
        let node_cred = self
            .node_credentials
            .get(node)
            .ok_or_else(|| SdvError::NotFound(format!("node credential {node}")))?
            .clone();

        // Node challenges the component.
        let challenge_n = b"node-challenge";
        let comp_wallet = self
            .component_wallets
            .get_mut(component)
            .ok_or_else(|| SdvError::NotFound(format!("component wallet {component}")))?;
        let vp = VerifiablePresentation::create(comp_wallet, vec![comp_cred], challenge_n)
            .map_err(|e| SdvError::AuthFailed(e.to_string()))?;
        vp.verify(&self.registry, challenge_n, 0)
            .map_err(|e| SdvError::AuthFailed(format!("component side: {e}")))?;
        self.auth_operations += 1;

        // Component challenges the node.
        let challenge_c = b"component-challenge";
        let node_wallet = self
            .node_wallets
            .get_mut(node)
            .ok_or_else(|| SdvError::NotFound(format!("node wallet {node}")))?;
        let vp = VerifiablePresentation::create(node_wallet, vec![node_cred], challenge_c)
            .map_err(|e| SdvError::AuthFailed(e.to_string()))?;
        vp.verify(&self.registry, challenge_c, 0)
            .map_err(|e| SdvError::AuthFailed(format!("node side: {e}")))?;
        self.auth_operations += 1;
        Ok(())
    }

    /// Deploys `component` onto `node` with the full zero-trust ceremony.
    ///
    /// # Errors
    ///
    /// [`SdvError::NotFound`], [`SdvError::AuthFailed`],
    /// [`SdvError::Incompatible`], or [`SdvError::NoCapacity`].
    pub fn place(&mut self, component: &str, node: &str) -> Result<(), SdvError> {
        let comp = self
            .components
            .get(component)
            .ok_or_else(|| SdvError::NotFound(format!("component {component}")))?
            .clone();
        let hw = self
            .nodes
            .get(node)
            .ok_or_else(|| SdvError::NotFound(format!("node {node}")))?
            .clone();

        self.mutual_auth(component, node)?;
        compatibility(&comp, &hw).map_err(SdvError::Incompatible)?;
        let used = self.used_capacity.get(node).copied().unwrap_or(0);
        if used + comp.compute_cost > hw.compute_capacity {
            return Err(SdvError::NoCapacity);
        }
        // Displace any previous placement of the component.
        self.remove_placement(component);
        self.used_capacity
            .insert(node.to_owned(), used + comp.compute_cost);
        self.placements.push(Placement {
            component: component.to_owned(),
            node: node.to_owned(),
        });
        Ok(())
    }

    fn remove_placement(&mut self, component: &str) {
        if let Some(pos) = self
            .placements
            .iter()
            .position(|p| p.component == component)
        {
            let old = self.placements.remove(pos);
            if let Some(comp) = self.components.get(component) {
                if let Some(u) = self.used_capacity.get_mut(&old.node) {
                    *u = u.saturating_sub(comp.compute_cost);
                }
            }
        }
    }

    /// Fails a node: every component it hosted is re-placed onto the
    /// first compatible node with capacity (full ceremony each time).
    /// Returns components that could not be re-placed.
    ///
    /// # Errors
    ///
    /// [`SdvError::NotFound`] for an unknown node.
    pub fn fail_node(&mut self, node: &str) -> Result<Vec<String>, SdvError> {
        if !self.nodes.contains_key(node) {
            return Err(SdvError::NotFound(format!("node {node}")));
        }
        let displaced: Vec<String> = self
            .placements
            .iter()
            .filter(|p| p.node == node)
            .map(|p| p.component.clone())
            .collect();
        for c in &displaced {
            self.remove_placement(c);
        }
        self.nodes.remove(node);
        self.used_capacity.remove(node);

        let mut stranded = Vec::new();
        let candidate_nodes: Vec<String> = self.nodes.keys().cloned().collect();
        for comp in displaced {
            let mut placed = false;
            for n in &candidate_nodes {
                if self.place(&comp, n).is_ok() {
                    placed = true;
                    break;
                }
            }
            if !placed {
                stranded.push(comp);
            }
        }
        Ok(stranded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Asil;

    fn component(id: &str, cost: u32, asil: Asil) -> SoftwareComponent {
        SoftwareComponent {
            id: id.into(),
            vendor: "tier1".into(),
            version: (1, 0, 0),
            requires: vec!["can-if".into()],
            compute_cost: cost,
            asil,
        }
    }

    fn node(id: &str, capacity: u32, asil: Asil) -> HardwareNode {
        HardwareNode {
            id: id.into(),
            provides: vec!["can-if".into()],
            compute_capacity: capacity,
            max_asil: asil,
        }
    }

    fn setup() -> (SdvPlatform, Wallet, SimRng) {
        let mut rng = SimRng::seed(2025);
        let (platform, oem) = SdvPlatform::new(&mut rng);
        (platform, oem, rng)
    }

    #[test]
    fn authenticated_placement_succeeds() {
        let (mut p, mut oem, mut rng) = setup();
        p.register_node(&mut rng, node("hpc-0", 100, Asil::D), &mut oem)
            .unwrap();
        p.register_component(&mut rng, component("brake", 10, Asil::D), &mut oem)
            .unwrap();
        p.place("brake", "hpc-0").unwrap();
        assert_eq!(p.host_of("brake"), Some("hpc-0"));
        assert_eq!(p.auth_operations, 2, "mutual = two verifications");
    }

    #[test]
    fn unvouched_component_rejected() {
        let (mut p, mut oem, mut rng) = setup();
        p.register_node(&mut rng, node("hpc-0", 100, Asil::D), &mut oem)
            .unwrap();
        // The component's credential is issued by an unanchored vendor.
        let mut rogue = Wallet::create(&mut rng, "rogue-vendor", p.registry());
        p.register_component(&mut rng, component("malware", 1, Asil::Qm), &mut rogue)
            .unwrap();
        let err = p.place("malware", "hpc-0").unwrap_err();
        assert!(matches!(err, SdvError::AuthFailed(_)), "{err}");
        assert_eq!(p.host_of("malware"), None);
    }

    #[test]
    fn endorsed_vendor_chain_accepted() {
        let (mut p, mut oem, mut rng) = setup();
        p.register_node(&mut rng, node("hpc-0", 100, Asil::D), &mut oem)
            .unwrap();
        let mut vendor = Wallet::create(&mut rng, "tier1", p.registry());
        // OEM endorses the vendor, creating a trust path.
        let endorsement = oem
            .issue(
                vendor.did().clone(),
                serde_json::json!({"authority": "software-vendor"}),
                None,
            )
            .unwrap();
        p.registry().record_endorsement(&endorsement).unwrap();
        p.register_component(&mut rng, component("adas", 10, Asil::B), &mut vendor)
            .unwrap();
        p.place("adas", "hpc-0").unwrap();
        assert_eq!(p.host_of("adas"), Some("hpc-0"));
    }

    #[test]
    fn incompatibility_blocks_after_auth() {
        let (mut p, mut oem, mut rng) = setup();
        p.register_node(&mut rng, node("ecu-small", 100, Asil::A), &mut oem)
            .unwrap();
        p.register_component(&mut rng, component("brake", 10, Asil::D), &mut oem)
            .unwrap();
        let err = p.place("brake", "ecu-small").unwrap_err();
        assert!(matches!(err, SdvError::Incompatible(_)), "{err}");
    }

    #[test]
    fn capacity_is_enforced() {
        let (mut p, mut oem, mut rng) = setup();
        p.register_node(&mut rng, node("hpc-0", 25, Asil::D), &mut oem)
            .unwrap();
        p.register_component(&mut rng, component("a", 20, Asil::Qm), &mut oem)
            .unwrap();
        p.register_component(&mut rng, component("b", 10, Asil::Qm), &mut oem)
            .unwrap();
        p.place("a", "hpc-0").unwrap();
        assert_eq!(p.place("b", "hpc-0").unwrap_err(), SdvError::NoCapacity);
    }

    #[test]
    fn failover_replaces_components() {
        let (mut p, mut oem, mut rng) = setup();
        p.register_node(&mut rng, node("hpc-0", 100, Asil::D), &mut oem)
            .unwrap();
        p.register_node(&mut rng, node("hpc-1", 100, Asil::D), &mut oem)
            .unwrap();
        p.register_component(&mut rng, component("brake", 10, Asil::D), &mut oem)
            .unwrap();
        p.register_component(&mut rng, component("adas", 30, Asil::B), &mut oem)
            .unwrap();
        p.place("brake", "hpc-0").unwrap();
        p.place("adas", "hpc-0").unwrap();

        let stranded = p.fail_node("hpc-0").unwrap();
        assert!(stranded.is_empty());
        assert_eq!(p.host_of("brake"), Some("hpc-1"));
        assert_eq!(p.host_of("adas"), Some("hpc-1"));
    }

    #[test]
    fn failover_reports_stranded_components() {
        let (mut p, mut oem, mut rng) = setup();
        p.register_node(&mut rng, node("hpc-0", 100, Asil::D), &mut oem)
            .unwrap();
        p.register_node(&mut rng, node("tiny", 5, Asil::D), &mut oem)
            .unwrap();
        p.register_component(&mut rng, component("big", 50, Asil::B), &mut oem)
            .unwrap();
        p.place("big", "hpc-0").unwrap();
        let stranded = p.fail_node("hpc-0").unwrap();
        assert_eq!(stranded, vec!["big".to_owned()]);
        assert_eq!(p.host_of("big"), None);
    }

    #[test]
    fn replacement_frees_old_capacity() {
        let (mut p, mut oem, mut rng) = setup();
        p.register_node(&mut rng, node("hpc-0", 25, Asil::D), &mut oem)
            .unwrap();
        p.register_node(&mut rng, node("hpc-1", 25, Asil::D), &mut oem)
            .unwrap();
        p.register_component(&mut rng, component("svc", 20, Asil::Qm), &mut oem)
            .unwrap();
        p.place("svc", "hpc-0").unwrap();
        p.place("svc", "hpc-1").unwrap(); // migrate
        assert_eq!(p.host_of("svc"), Some("hpc-1"));
        // hpc-0's capacity must be free again.
        p.register_component(&mut rng, component("svc2", 20, Asil::Qm), &mut oem)
            .unwrap();
        p.place("svc2", "hpc-0").unwrap();
    }
}
